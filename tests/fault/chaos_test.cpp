// ChaosEngine: seeded fault schedules against the Figure 1 world must be
// bit-for-bit reproducible, recovery must actually happen through the real
// protocol machinery (re-flood, asserts, MLD queries, BU refreshes), and
// the auditor must stay green through every transient.
#include <gtest/gtest.h>

#include "core/figure1.hpp"
#include "core/traffic.hpp"
#include "fault/chaos.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

struct Harness {
  Figure1 f;
  std::unique_ptr<GroupReceiverApp> app;
  std::unique_ptr<CbrSource> source;

  explicit Harness(std::uint64_t seed, WorldConfig config = {},
                   StrategyOptions strategy = {})
      : f(build_figure1(seed, config, strategy)) {
    Address group = Figure1::group();
    app = std::make_unique<GroupReceiverApp>(*f.recv3->stack, kPort);
    f.recv3->service->subscribe(group);
    auto* sender = f.sender;
    source = std::make_unique<CbrSource>(
        f.world->scheduler(),
        [sender, group](Bytes p) {
          sender->service->send_multicast(group, kPort, kPort, std::move(p));
        },
        Time::ms(100), 64);
    source->start(Time::sec(1));
  }
};

std::string recovery_trace(const ChaosEngine& chaos,
                           const GroupReceiverApp& app) {
  std::string out;
  for (const auto& rec : chaos.recoveries(app)) {
    out += rec.event.str() + " -> ";
    out += rec.recovered_at ? rec.recovered_at->str() : "never";
    out += "\n";
  }
  return out;
}

TEST(Chaos, SameSeedSameTraceSameRecoveries) {
  RandomPlanSpec spec;
  spec.start = Time::sec(10);
  spec.end = Time::sec(70);
  spec.disruptions = 5;
  spec.min_outage = Time::sec(2);
  spec.max_outage = Time::sec(10);
  spec.links = {"Link2", "Link3", "Link4"};
  spec.routers = {"RouterB", "RouterC"};
  spec.hosts = {"Receiver3"};
  spec.home_agents = {"RouterD"};

  auto run_once = [&] {
    Harness h(33);
    ChaosEngine chaos(*h.f.world, FaultPlan::random(spec, 99));
    chaos.arm();
    h.f.world->run_until(Time::sec(120));
    EXPECT_TRUE(chaos.all_audits_ok());
    return chaos.trace_str() + "---\n" + recovery_trace(chaos, *h.app) +
           "received=" + std::to_string(h.app->unique_received());
  };
  std::string first = run_once();
  std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("---"), std::string::npos);
}

TEST(Chaos, LinkOutageDropsAndRecoversTheStream) {
  Harness h(35);
  FaultPlan plan;
  plan.link_down(Time::sec(20), "Link3").link_up(Time::sec(25), "Link3");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();
  h.f.world->run_until(Time::sec(40));

  EXPECT_TRUE(chaos.all_audits_ok());
  ASSERT_EQ(chaos.executed().size(), 2u);
  // Nothing crosses the severed Link3...
  EXPECT_EQ(h.app->received_in(Time::sec(21), Time::sec(25)), 0u);
  // ...and the next datagram after repair gets through.
  auto recs = chaos.recoveries(*h.app);
  ASSERT_EQ(recs.size(), 1u);
  ASSERT_TRUE(recs[0].recovered_at.has_value());
  EXPECT_GE(*recs[0].recovered_at, Time::sec(25));
  EXPECT_LT(*recs[0].recovered_at, Time::sec(26));
  EXPECT_GT(h.app->received_in(Time::sec(25), Time::sec(40)), 100u);
  // The link itself accounted for the outage.
  EXPECT_GT(h.f.world->net().link_by_name("Link3").dropped_packets(), 0u);
}

TEST(Chaos, RouterCrashWipesStateAndRestartReconverges) {
  Harness h(37);
  FaultPlan plan;
  plan.router_crash(Time::sec(20), "RouterD")
      .router_restart(Time::sec(25), "RouterD");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();

  const Address s = h.f.sender->mn->home_address();
  h.f.world->run_until(Time::sec(21));
  // Soft state is gone, node is down.
  EXPECT_FALSE(h.f.d->node->up());
  EXPECT_EQ(h.f.d->pim->entry_count(), 0u);
  EXPECT_FALSE(h.f.d->pim->has_entry(s, Figure1::group()));
  EXPECT_TRUE(h.f.d->mld->enabled_ifaces().empty());

  h.f.world->run_until(Time::sec(60));
  EXPECT_TRUE(chaos.all_audits_ok());
  EXPECT_TRUE(h.f.d->node->up());
  // Real re-convergence: the (S,G) entry and the Link4 listener are back,
  // learned from scratch via flood + MLD startup queries.
  EXPECT_TRUE(h.f.d->pim->has_entry(s, Figure1::group()));
  auto recs = chaos.recoveries(*h.app);
  ASSERT_EQ(recs.size(), 1u);
  ASSERT_TRUE(recs[0].recovered_at.has_value());
  // MLD startup query + report bound the re-join.
  EXPECT_LT(*recs[0].recovered_at,
            Time::sec(25) + h.f.world->config().mld.query_response_interval +
                Time::sec(2));
  EXPECT_GT(h.app->received_in(Time::sec(45), Time::sec(60)), 100u);
}

TEST(Chaos, RouterCrashReconvergesUnderRipng) {
  WorldConfig config;
  config.unicast = UnicastRouting::kRipng;
  Harness h(39, config);
  FaultPlan plan;
  plan.router_crash(Time::sec(30), "RouterD")
      .router_restart(Time::sec(35), "RouterD");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();
  h.f.world->run_until(Time::sec(120));

  EXPECT_TRUE(chaos.all_audits_ok());
  // RIPng re-learns routes within its periodic update cycle; delivery must
  // resume well before the horizon.
  auto recs = chaos.recoveries(*h.app);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].recovered_at.has_value());
  EXPECT_GT(h.app->received_in(Time::sec(80), Time::sec(120)), 100u);
}

TEST(Chaos, HostCrashRestartRejoinsThroughAttachmentPath) {
  Harness h(41);
  FaultPlan plan;
  plan.host_crash(Time::sec(20), "Receiver3")
      .host_restart(Time::sec(25), "Receiver3");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();

  h.f.world->run_until(Time::sec(21));
  EXPECT_FALSE(h.f.recv3->node->up());
  EXPECT_FALSE(h.f.recv3->mld_host->joined(h.f.recv3->iface(), Figure1::group()));

  h.f.world->run_until(Time::sec(45));
  EXPECT_TRUE(chaos.all_audits_ok());
  EXPECT_TRUE(h.f.recv3->node->up());
  // The restart ran the ordinary attachment path: local membership is back.
  EXPECT_TRUE(h.f.recv3->mld_host->joined(h.f.recv3->iface(), Figure1::group()));
  EXPECT_EQ(h.app->received_in(Time::sec(21), Time::sec(25)), 0u);
  EXPECT_GT(h.app->received_in(Time::sec(26), Time::sec(45)), 150u);
}

TEST(Chaos, HaOutageRecoveredByBindingRefresh) {
  // Receiver3 roams to Link6 and receives only through the RouterD tunnel
  // (approach 4). Killing the home agent black-holes the stream; the next
  // Binding Update refresh after the restore re-registers the group list
  // and delivery resumes — the recovery the paper's Section 4.3.2 relies on.
  WorldConfig config;
  config.mipv6.bu_refresh_interval = Time::sec(5);
  StrategyOptions strategy;
  strategy.strategy = McastStrategy::kTunnelHaToMh;
  strategy.registration = HaRegistration::kGroupListBu;
  Harness h(43, config, strategy);
  h.f.world->scheduler().schedule_at(Time::sec(5), [&h] {
    h.f.recv3->mn->move_to(*h.f.link6);
  });
  FaultPlan plan;
  plan.ha_outage(Time::sec(20), "RouterD")
      .ha_restore(Time::sec(30), "RouterD");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();
  h.f.world->run_until(Time::sec(60));

  EXPECT_TRUE(chaos.all_audits_ok());
  // Tunnel delivery worked before the outage, died during it...
  EXPECT_GT(h.app->received_in(Time::sec(10), Time::sec(20)), 50u);
  EXPECT_EQ(h.app->received_in(Time::sec(21), Time::sec(30)), 0u);
  // ...and came back within a couple of refresh intervals of the restore.
  auto recs = chaos.recoveries(*h.app);
  ASSERT_EQ(recs.size(), 1u);
  ASSERT_TRUE(recs[0].recovered_at.has_value());
  EXPECT_LT(*recs[0].recovered_at, Time::sec(45));
  EXPECT_GT(h.app->received_in(Time::sec(45), Time::sec(60)), 100u);
  EXPECT_GT(h.f.world->net().counters().get("ha/drop/disabled-bu"), 0u);
}

TEST(Chaos, DegradeWindowCountsLossAndCorruptionOnTheLink) {
  Harness h(45);
  FaultPlan plan;
  plan.degrade(Time::sec(10), "Link4",
               LinkImpairment{0.3, 0.2, Time::ms(2)})
      .restore(Time::sec(30), "Link4");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();
  // Snapshot just before the degrade window opens: the startup flood can
  // legitimately double-deliver the first datagram (both RouterB and
  // RouterC forward onto Link3 until the assert election resolves).
  std::uint64_t dups_before = 0;
  h.f.world->scheduler().schedule_at(Time::sec(10),
                                     [&] { dups_before = h.app->duplicates(); });
  h.f.world->run_until(Time::sec(40));

  Link& l4 = h.f.world->net().link_by_name("Link4");
  EXPECT_GT(l4.dropped_packets(), 0u);
  EXPECT_GT(l4.corrupted_packets(), 0u);
  EXPECT_FALSE(l4.impairment().any());  // restored
  // Corrupted datagrams were rejected by the UDP checksum, never delivered
  // to the app as extra data, and the stream survives the window.
  EXPECT_EQ(h.app->duplicates(), dups_before);
  EXPECT_GT(h.app->received_in(Time::sec(30), Time::sec(40)), 80u);
  EXPECT_TRUE(chaos.all_audits_ok());
}

TEST(Chaos, ArmTwiceThrows) {
  Harness h(47);
  ChaosEngine chaos(*h.f.world, FaultPlan().link_down(Time::sec(1), "Link1"));
  chaos.arm();
  EXPECT_THROW(chaos.arm(), LogicError);
}

}  // namespace
}  // namespace mip6
