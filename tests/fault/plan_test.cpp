// FaultPlan: builder ordering, trace format, and the seed-reproducibility
// contract of random plan generation.
#include <gtest/gtest.h>

#include "fault/plan.hpp"
#include "util/errors.hpp"

namespace mip6 {
namespace {

TEST(FaultPlan, BuilderKeepsEventsAndSortsByTime) {
  FaultPlan plan;
  plan.link_up(Time::sec(30), "Link3")
      .link_down(Time::sec(20), "Link3")
      .router_crash(Time::sec(10), "RouterD");
  ASSERT_EQ(plan.size(), 3u);
  auto sorted = plan.sorted();
  EXPECT_EQ(sorted[0].kind, FaultKind::kRouterCrash);
  EXPECT_EQ(sorted[1].kind, FaultKind::kLinkDown);
  EXPECT_EQ(sorted[2].kind, FaultKind::kLinkUp);
  EXPECT_EQ(sorted[0].target, "RouterD");
}

TEST(FaultPlan, StableSortPreservesInsertionOrderAtEqualTimes) {
  FaultPlan plan;
  plan.ha_outage(Time::sec(5), "RouterA").link_down(Time::sec(5), "Link1");
  auto sorted = plan.sorted();
  EXPECT_EQ(sorted[0].kind, FaultKind::kHaOutage);
  EXPECT_EQ(sorted[1].kind, FaultKind::kLinkDown);
}

TEST(FaultPlan, EventStrNamesKindTargetAndTime) {
  FaultEvent e{Time::sec(12), FaultKind::kLinkDown, "Link3", {}};
  EXPECT_EQ(e.str(), "12.000000000s link-down Link3");
  FaultEvent d{Time::ms(500), FaultKind::kLinkDegrade, "Link1",
               LinkImpairment{0.5, 0.0, Time::zero()}};
  EXPECT_NE(d.str().find("link-degrade Link1"), std::string::npos);
  EXPECT_NE(d.str().find("loss=0.5"), std::string::npos);
}

RandomPlanSpec fig1_spec() {
  RandomPlanSpec spec;
  spec.start = Time::sec(5);
  spec.end = Time::sec(60);
  spec.disruptions = 6;
  spec.min_outage = Time::sec(1);
  spec.max_outage = Time::sec(8);
  spec.links = {"Link1", "Link2", "Link3", "Link4"};
  spec.routers = {"RouterB", "RouterC"};
  spec.hosts = {"Receiver3"};
  spec.home_agents = {"RouterD"};
  return spec;
}

TEST(FaultPlanRandom, SameSeedSamePlanBitForBit) {
  RandomPlanSpec spec = fig1_spec();
  FaultPlan a = FaultPlan::random(spec, 42);
  FaultPlan b = FaultPlan::random(spec, 42);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(a.str().empty());
}

TEST(FaultPlanRandom, DifferentSeedsDiverge) {
  RandomPlanSpec spec = fig1_spec();
  EXPECT_NE(FaultPlan::random(spec, 1).str(),
            FaultPlan::random(spec, 2).str());
}

TEST(FaultPlanRandom, EveryDisruptionIsPairedAndInsideTheWindow) {
  RandomPlanSpec spec = fig1_spec();
  FaultPlan plan = FaultPlan::random(spec, 7);
  ASSERT_EQ(plan.size(), static_cast<std::size_t>(spec.disruptions) * 2);
  const auto& events = plan.events();
  for (std::size_t i = 0; i < events.size(); i += 2) {
    const FaultEvent& fault = events[i];
    const FaultEvent& repair = events[i + 1];
    EXPECT_TRUE(is_disruption(fault.kind)) << fault.str();
    EXPECT_FALSE(is_disruption(repair.kind)) << repair.str();
    EXPECT_EQ(fault.target, repair.target);
    EXPECT_GE(fault.at, spec.start);
    EXPECT_LE(repair.at, spec.end);
    EXPECT_GT(repair.at, fault.at);
  }
}

TEST(FaultPlanRandom, RejectsEmptySpecs) {
  RandomPlanSpec empty;
  EXPECT_THROW(FaultPlan::random(empty, 1), LogicError);
  RandomPlanSpec inverted = fig1_spec();
  inverted.end = inverted.start;
  EXPECT_THROW(FaultPlan::random(inverted, 1), LogicError);
}

TEST(FaultKindNames, RoundTripAndRepairPairing) {
  for (FaultKind k :
       {FaultKind::kLinkDown, FaultKind::kLinkUp, FaultKind::kLinkDegrade,
        FaultKind::kLinkRestore, FaultKind::kRouterCrash,
        FaultKind::kRouterRestart, FaultKind::kHostCrash,
        FaultKind::kHostRestart, FaultKind::kHaOutage,
        FaultKind::kHaRestore}) {
    auto back = fault_kind_from_name(fault_kind_name(k));
    ASSERT_TRUE(back.has_value()) << fault_kind_name(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(fault_kind_from_name("link-sideways").has_value());

  EXPECT_EQ(repair_kind_of(FaultKind::kLinkDown), FaultKind::kLinkUp);
  EXPECT_EQ(repair_kind_of(FaultKind::kLinkDegrade), FaultKind::kLinkRestore);
  EXPECT_EQ(repair_kind_of(FaultKind::kRouterCrash),
            FaultKind::kRouterRestart);
  EXPECT_EQ(repair_kind_of(FaultKind::kHostCrash), FaultKind::kHostRestart);
  EXPECT_EQ(repair_kind_of(FaultKind::kHaOutage), FaultKind::kHaRestore);
  EXPECT_THROW(repair_kind_of(FaultKind::kLinkUp), LogicError);
}

/// Satellite contract: FaultPlan::random never schedules a disruption
/// against a target whose previous fault/repair pair is still open.
TEST(FaultPlanRandom, NeverOverlapsWindowsOnOneTarget) {
  RandomPlanSpec spec = fig1_spec();
  // Saturate: one link, many disruptions, long outages in a short window —
  // the regime where the old generator emitted down-of-down sequences.
  spec.links = {"Link1"};
  spec.routers.clear();
  spec.hosts.clear();
  spec.home_agents.clear();
  spec.allow_degrade = true;
  spec.disruptions = 8;
  spec.min_outage = Time::sec(4);
  spec.max_outage = Time::sec(10);

  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    FaultPlan plan = FaultPlan::random(spec, seed);
    // Reconstruct per-target windows from the paired events.
    struct Window {
      std::string target;
      Time begin, end;
    };
    std::vector<Window> windows;
    const auto& events = plan.events();
    ASSERT_EQ(events.size() % 2, 0u);
    for (std::size_t i = 0; i < events.size(); i += 2) {
      ASSERT_TRUE(is_disruption(events[i].kind)) << events[i].str();
      ASSERT_EQ(repair_kind_of(events[i].kind), events[i + 1].kind);
      ASSERT_EQ(events[i].target, events[i + 1].target);
      windows.push_back({events[i].target, events[i].at, events[i + 1].at});
    }
    for (std::size_t i = 0; i < windows.size(); ++i) {
      for (std::size_t j = i + 1; j < windows.size(); ++j) {
        if (windows[i].target != windows[j].target) continue;
        // Touching (end == begin) is allowed; overlap is not.
        EXPECT_FALSE(windows[i].begin < windows[j].end &&
                     windows[j].begin < windows[i].end)
            << "seed " << seed << ":\n"
            << plan.str();
      }
    }
  }
}

TEST(FaultPlanRandom, SaturatedScheduleDropsDisruptionsInsteadOfOverlapping) {
  RandomPlanSpec spec = fig1_spec();
  spec.links = {"Link1"};
  spec.routers.clear();
  spec.hosts.clear();
  spec.home_agents.clear();
  spec.allow_degrade = false;
  // 40 disruptions of >= 20 s each cannot fit in a 55 s window without
  // overlapping: the generator must come up short rather than double-book.
  spec.disruptions = 40;
  spec.min_outage = Time::sec(20);
  spec.max_outage = Time::sec(30);
  FaultPlan plan = FaultPlan::random(spec, 3);
  EXPECT_LT(plan.size(), 80u);
  EXPECT_GE(plan.size(), 2u);
}

TEST(FaultPlanJson, EventRoundTripIsExact) {
  FaultEvent e{Time::ns(12'000'000'001), FaultKind::kLinkDegrade, "Link3",
               LinkImpairment{0.25, 0.05, Time::ms(5)}};
  FaultEvent back = FaultEvent::from_json(e.to_json());
  EXPECT_EQ(back.at, e.at);  // at_ns is authoritative: bit-exact
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.target, e.target);
  EXPECT_EQ(back.impairment.loss, e.impairment.loss);
  EXPECT_EQ(back.impairment.corrupt, e.impairment.corrupt);
  EXPECT_EQ(back.impairment.jitter, e.impairment.jitter);
}

TEST(FaultPlanJson, PlanRoundTripPreservesOrderAndStr) {
  RandomPlanSpec spec = fig1_spec();
  FaultPlan plan = FaultPlan::random(spec, 11);
  FaultPlan back = FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(back.str(), plan.str());
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back.events()[i].at, plan.events()[i].at);
  }
}

TEST(FaultPlanJson, FromJsonNamesTheOffendingField) {
  Json bad = Json::object();
  bad.set("kind", "link-down");
  EXPECT_THROW(FaultEvent::from_json(bad), ParseError);  // no target
  bad.set("target", "Link1");
  EXPECT_THROW(FaultEvent::from_json(bad), ParseError);  // no time
  bad.set("at_s", 5.0);
  EXPECT_EQ(FaultEvent::from_json(bad).at, Time::sec(5));
  Json unknown = Json::object();
  unknown.set("kind", "link-sideways");
  unknown.set("target", "Link1");
  unknown.set("at_s", 1.0);
  EXPECT_THROW(FaultEvent::from_json(unknown), ParseError);
}

}  // namespace
}  // namespace mip6
