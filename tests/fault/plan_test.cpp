// FaultPlan: builder ordering, trace format, and the seed-reproducibility
// contract of random plan generation.
#include <gtest/gtest.h>

#include "fault/plan.hpp"
#include "util/errors.hpp"

namespace mip6 {
namespace {

TEST(FaultPlan, BuilderKeepsEventsAndSortsByTime) {
  FaultPlan plan;
  plan.link_up(Time::sec(30), "Link3")
      .link_down(Time::sec(20), "Link3")
      .router_crash(Time::sec(10), "RouterD");
  ASSERT_EQ(plan.size(), 3u);
  auto sorted = plan.sorted();
  EXPECT_EQ(sorted[0].kind, FaultKind::kRouterCrash);
  EXPECT_EQ(sorted[1].kind, FaultKind::kLinkDown);
  EXPECT_EQ(sorted[2].kind, FaultKind::kLinkUp);
  EXPECT_EQ(sorted[0].target, "RouterD");
}

TEST(FaultPlan, StableSortPreservesInsertionOrderAtEqualTimes) {
  FaultPlan plan;
  plan.ha_outage(Time::sec(5), "RouterA").link_down(Time::sec(5), "Link1");
  auto sorted = plan.sorted();
  EXPECT_EQ(sorted[0].kind, FaultKind::kHaOutage);
  EXPECT_EQ(sorted[1].kind, FaultKind::kLinkDown);
}

TEST(FaultPlan, EventStrNamesKindTargetAndTime) {
  FaultEvent e{Time::sec(12), FaultKind::kLinkDown, "Link3", {}};
  EXPECT_EQ(e.str(), "12.000000000s link-down Link3");
  FaultEvent d{Time::ms(500), FaultKind::kLinkDegrade, "Link1",
               LinkImpairment{0.5, 0.0, Time::zero()}};
  EXPECT_NE(d.str().find("link-degrade Link1"), std::string::npos);
  EXPECT_NE(d.str().find("loss=0.5"), std::string::npos);
}

RandomPlanSpec fig1_spec() {
  RandomPlanSpec spec;
  spec.start = Time::sec(5);
  spec.end = Time::sec(60);
  spec.disruptions = 6;
  spec.min_outage = Time::sec(1);
  spec.max_outage = Time::sec(8);
  spec.links = {"Link1", "Link2", "Link3", "Link4"};
  spec.routers = {"RouterB", "RouterC"};
  spec.hosts = {"Receiver3"};
  spec.home_agents = {"RouterD"};
  return spec;
}

TEST(FaultPlanRandom, SameSeedSamePlanBitForBit) {
  RandomPlanSpec spec = fig1_spec();
  FaultPlan a = FaultPlan::random(spec, 42);
  FaultPlan b = FaultPlan::random(spec, 42);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(a.str().empty());
}

TEST(FaultPlanRandom, DifferentSeedsDiverge) {
  RandomPlanSpec spec = fig1_spec();
  EXPECT_NE(FaultPlan::random(spec, 1).str(),
            FaultPlan::random(spec, 2).str());
}

TEST(FaultPlanRandom, EveryDisruptionIsPairedAndInsideTheWindow) {
  RandomPlanSpec spec = fig1_spec();
  FaultPlan plan = FaultPlan::random(spec, 7);
  ASSERT_EQ(plan.size(), static_cast<std::size_t>(spec.disruptions) * 2);
  const auto& events = plan.events();
  for (std::size_t i = 0; i < events.size(); i += 2) {
    const FaultEvent& fault = events[i];
    const FaultEvent& repair = events[i + 1];
    EXPECT_TRUE(is_disruption(fault.kind)) << fault.str();
    EXPECT_FALSE(is_disruption(repair.kind)) << repair.str();
    EXPECT_EQ(fault.target, repair.target);
    EXPECT_GE(fault.at, spec.start);
    EXPECT_LE(repair.at, spec.end);
    EXPECT_GT(repair.at, fault.at);
  }
}

TEST(FaultPlanRandom, RejectsEmptySpecs) {
  RandomPlanSpec empty;
  EXPECT_THROW(FaultPlan::random(empty, 1), LogicError);
  RandomPlanSpec inverted = fig1_spec();
  inverted.end = inverted.start;
  EXPECT_THROW(FaultPlan::random(inverted, 1), LogicError);
}

}  // namespace
}  // namespace mip6
