// ddmin shrinker: unit pairing, reduction to the minimal failing core,
// time/impairment coarsening, budget discipline.
#include <gtest/gtest.h>

#include "fault/shrink.hpp"
#include "util/errors.hpp"

namespace mip6 {
namespace {

bool has_event(const FaultPlan& plan, FaultKind kind,
               const std::string& target) {
  for (const auto& e : plan.events()) {
    if (e.kind == kind && e.target == target) return true;
  }
  return false;
}

TEST(PairUnits, MatchesRepairsByTargetAndKind) {
  FaultPlan plan;
  plan.link_down(Time::sec(10), "Link1")
      .link_down(Time::sec(12), "Link2")
      .link_up(Time::sec(14), "Link1")
      .link_up(Time::sec(16), "Link2")
      .router_crash(Time::sec(20), "RouterB")
      .router_restart(Time::sec(25), "RouterB");
  auto units = pair_units(plan);
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].fault.target, "Link1");
  ASSERT_TRUE(units[0].repair.has_value());
  EXPECT_EQ(units[0].repair->at, Time::sec(14));
  EXPECT_EQ(units[1].fault.target, "Link2");
  ASSERT_TRUE(units[1].repair.has_value());
  EXPECT_EQ(units[2].fault.kind, FaultKind::kRouterCrash);
  ASSERT_TRUE(units[2].repair.has_value());
  EXPECT_EQ(units[2].repair->kind, FaultKind::kRouterRestart);
}

TEST(PairUnits, OrphansTravelAsSingleEventUnits) {
  FaultPlan plan;
  plan.link_down(Time::sec(10), "Link1")   // never repaired
      .link_up(Time::sec(20), "Link2");    // repair with no disruption
  auto units = pair_units(plan);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_FALSE(units[0].repair.has_value());
  EXPECT_EQ(units[0].fault.target, "Link1");
  EXPECT_FALSE(units[1].repair.has_value());
  EXPECT_EQ(units[1].fault.kind, FaultKind::kLinkUp);
}

TEST(PairUnits, RoundTripsThroughUnitsToPlan) {
  FaultPlan plan;
  plan.link_down(Time::sec(10), "Link1")
      .link_up(Time::sec(14), "Link1")
      .host_crash(Time::sec(15), "Receiver3")
      .host_restart(Time::sec(18), "Receiver3");
  FaultPlan back = units_to_plan(pair_units(plan));
  EXPECT_EQ(back.str(), plan.str());
}

TEST(ShrinkPlan, ReducesToTheSingleUnitThePredicateNeeds) {
  FaultPlan plan;
  plan.link_down(Time::sec(10), "Link1")
      .link_up(Time::sec(12), "Link1")
      .link_down(Time::sec(14), "Link3")  // <- the "bug trigger"
      .link_up(Time::sec(18), "Link3")
      .router_crash(Time::sec(20), "RouterB")
      .router_restart(Time::sec(24), "RouterB")
      .ha_outage(Time::sec(30), "RouterD")
      .ha_restore(Time::sec(33), "RouterD");
  auto still_fails = [](const FaultPlan& p) {
    return has_event(p, FaultKind::kLinkDown, "Link3");
  };
  ShrinkStats stats;
  FaultPlan shrunk = shrink_plan(plan, still_fails, {}, &stats);
  EXPECT_EQ(stats.initial_units, 4u);
  EXPECT_EQ(stats.final_units, 1u);
  EXPECT_TRUE(has_event(shrunk, FaultKind::kLinkDown, "Link3"));
  EXPECT_FALSE(has_event(shrunk, FaultKind::kRouterCrash, "RouterB"));
  EXPECT_FALSE(has_event(shrunk, FaultKind::kHaOutage, "RouterD"));
  EXPECT_GT(stats.runs, 0u);
}

TEST(ShrinkPlan, CoarsensTimesOutagesAndImpairments) {
  FaultPlan plan;
  plan.degrade(Time::ns(10'123'456'789), "Link3",
               LinkImpairment{0.371, 0.02, Time::ms(7)})
      .restore(Time::ns(17'987'654'321), "Link3");
  auto still_fails = [](const FaultPlan& p) {
    return has_event(p, FaultKind::kLinkDegrade, "Link3");
  };
  ShrinkConfig cfg;
  cfg.granularity = Time::ms(500);
  cfg.min_outage = Time::ms(500);
  ShrinkStats stats;
  FaultPlan shrunk = shrink_plan(plan, still_fails, cfg, &stats);
  ASSERT_EQ(shrunk.size(), 2u);
  const auto& events = shrunk.sorted();
  // Fault time snapped down to the granularity grid.
  EXPECT_EQ(events[0].at.nanos() % cfg.granularity.nanos(), 0);
  // Outage shortened toward min_outage.
  EXPECT_EQ(events[1].at - events[0].at, cfg.min_outage);
  // Degrade impairment canonicalized to the simple half-loss form.
  EXPECT_EQ(events[0].impairment.loss, 0.5);
  EXPECT_EQ(events[0].impairment.corrupt, 0.0);
  EXPECT_EQ(events[0].impairment.jitter, Time::zero());
  EXPECT_GT(stats.coarsened_events, 0u);
}

TEST(ShrinkPlan, CoarseningRollsBackWhenThePredicateDependsOnTiming) {
  FaultPlan plan;
  plan.link_down(Time::ns(10'123'456'789), "Link1")
      .link_up(Time::sec(19), "Link1");
  // Predicate pins both exact instants: neither time snapping nor outage
  // shortening may survive, and the plan must come back unchanged.
  auto still_fails = [](const FaultPlan& p) {
    if (p.size() != 2) return false;
    const auto sorted = p.sorted();
    return sorted[0].kind == FaultKind::kLinkDown &&
           sorted[0].at == Time::ns(10'123'456'789) &&
           sorted[1].kind == FaultKind::kLinkUp &&
           sorted[1].at == Time::sec(19);
  };
  ShrinkStats stats;
  FaultPlan shrunk = shrink_plan(plan, still_fails, {}, &stats);
  EXPECT_EQ(shrunk.str(), plan.str());
  EXPECT_EQ(stats.coarsened_events, 0u);
}

TEST(ShrinkPlan, BudgetExhaustionIsBestEffort) {
  FaultPlan plan;
  for (int i = 0; i < 8; ++i) {
    plan.link_down(Time::sec(5 + 4 * i), "Link" + std::to_string(i % 4 + 1))
        .link_up(Time::sec(7 + 4 * i), "Link" + std::to_string(i % 4 + 1));
  }
  auto still_fails = [](const FaultPlan& p) {
    return has_event(p, FaultKind::kLinkDown, "Link3");
  };
  ShrinkConfig cfg;
  cfg.max_runs = 2;  // far too small to finish ddmin
  ShrinkStats stats;
  FaultPlan shrunk = shrink_plan(plan, still_fails, cfg, &stats);
  EXPECT_LE(stats.runs, cfg.max_runs);
  // Whatever came out must still fail — shrinking never loses the bug.
  EXPECT_TRUE(still_fails(shrunk));
}

TEST(ShrinkPlan, ThrowsWhenTheInputPlanPasses) {
  FaultPlan plan;
  plan.link_down(Time::sec(10), "Link1").link_up(Time::sec(12), "Link1");
  EXPECT_THROW(
      shrink_plan(plan, [](const FaultPlan&) { return false; }),
      LogicError);
}

}  // namespace
}  // namespace mip6
