// Replays the committed chaos reproducer corpus byte-exact: every entry
// under tests/fault/corpus/ is re-run twice and must produce (a) identical
// chaos traces both times, (b) the violation classes recorded at capture
// time, and (c) the recorded trace line for line. A mismatch means world
// behavior under that fault schedule changed — either fix the regression
// or re-record deliberately with `mip6sim chaos-replay --record` and
// review the diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/search.hpp"

#ifndef MIP6_FAULT_CORPUS_DIR
#error "MIP6_FAULT_CORPUS_DIR must point at tests/fault/corpus"
#endif
#ifndef MIP6_SCENARIO_DIR
#error "MIP6_SCENARIO_DIR must point at examples/scenarios"
#endif

namespace mip6 {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(MIP6_FAULT_CORPUS_DIR)) {
    if (entry.path().extension() == ".json")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FaultCorpus, EveryReproducerReplaysByteExactTwice) {
  std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty()) << "no corpus entries under "
                              << MIP6_FAULT_CORPUS_DIR;
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    ChaosReproducer repro = ChaosReproducer::load_file(path);
    ScenarioSpec spec = ScenarioSpec::load_file(
        std::string(MIP6_SCENARIO_DIR) + "/" + repro.scenario);

    ChaosRunResult first = replay_reproducer(spec, repro);
    ChaosRunResult second = replay_reproducer(spec, repro);

    // Determinism: two runs of the same tuple are indistinguishable.
    EXPECT_EQ(first.trace, second.trace);
    EXPECT_EQ(first.classes(), second.classes());
    EXPECT_EQ(first.delivered_total, second.delivered_total);
    EXPECT_EQ(first.executed_events, second.executed_events);

    // Regression anchor: behavior matches what was recorded at capture.
    EXPECT_EQ(first.classes(), repro.classes);
    EXPECT_EQ(first.trace, repro.trace);
  }
}

TEST(FaultCorpus, EntriesValidateAgainstTheReproSchema) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    ChaosReproducer repro = ChaosReproducer::load_file(path);
    EXPECT_FALSE(repro.scenario.empty());
    EXPECT_GT(repro.settle_s, 0.0);
    // Round-trip through JSON is lossless for the replay-relevant fields.
    ChaosReproducer back = ChaosReproducer::from_json(repro.to_json());
    EXPECT_EQ(back.plan.str(), repro.plan.str());
    EXPECT_EQ(back.trace, repro.trace);
    EXPECT_EQ(back.classes, repro.classes);
    EXPECT_EQ(back.seed, repro.seed);
  }
}

}  // namespace
}  // namespace mip6
