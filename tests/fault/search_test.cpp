// Chaos search end-to-end: deterministic classification, clean trees stay
// clean, biased plan generation keeps its invariants, and the shrinker
// acceptance path — an injected lost-repair bug must shrink to a tiny
// reproducer that still fires.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "fault/search.hpp"
#include "sim/rng.hpp"
#include "util/errors.hpp"

namespace mip6 {
namespace {

ScenarioSpec chaos_ab_spec() {
  return ScenarioSpec::load_file(std::string(MIP6_SCENARIO_DIR) +
                                 "/chaos_ab.json");
}

/// Short settle keeps each world run cheap; the scenario's own plan stays
/// far below the horizon so the deadline math still has room.
ChaosRunOptions fast_opts() {
  ChaosRunOptions opts;
  opts.settle = Time::sec(12);
  return opts;
}

TEST(ChaosRun, SameInputsSameTraceAndClassesTwice) {
  ScenarioSpec spec = chaos_ab_spec();
  FaultPlan plan;
  plan.link_down(Time::sec(20), "Link3").link_up(Time::sec(24), "Link3");
  ChaosRunOptions opts = fast_opts();
  ChaosRunResult a = run_fault_plan(spec, plan, spec.seed, opts);
  ChaosRunResult b = run_fault_plan(spec, plan, spec.seed, opts);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.classes(), b.classes());
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_FALSE(a.trace.empty());
}

TEST(ChaosRun, RepairedDisruptionOnHealthyTreeIsClean) {
  ScenarioSpec spec = chaos_ab_spec();
  FaultPlan plan;
  plan.link_down(Time::sec(20), "Link3").link_up(Time::sec(24), "Link3");
  WorldOracle oracle = compute_world_oracle(
      spec, spec.seed, chaos_horizon(spec, fast_opts()));
  ChaosRunResult r = run_fault_plan(spec, plan, spec.seed, fast_opts(),
                                    &oracle);
  EXPECT_FALSE(r.violated())
      << violation_class_name(r.violations.front().cls) << ": "
      << r.violations.front().detail;
}

TEST(ChaosSearch, FixedBudgetOnCleanTreeFindsNothing) {
  ScenarioSpec spec = chaos_ab_spec();
  ChaosSearchConfig cfg;
  cfg.budget = 3;
  // Seed chosen so the three explored plans are repaired-and-clean under
  // the current event ordering; a seed whose plans straddle a prune
  // holdtime boundary legitimately reports residual (S,G) state instead.
  cfg.seed = 9;
  cfg.max_disruptions = 2;
  cfg.run = fast_opts();
  ChaosSearchResult r = chaos_search(spec, cfg);
  EXPECT_EQ(r.explored, 3u);
  EXPECT_EQ(r.violating, 0u)
      << (r.findings.empty()
              ? ""
              : r.findings.front().violations.front().detail);
  EXPECT_EQ(r.plans.size(), 3u);
  EXPECT_GT(r.executed_events, 0u);
}

TEST(ChaosSearch, BiasedPlansAreDeterministicAndNonOverlapping) {
  ScenarioSpec spec = chaos_ab_spec();
  ChaosSearchConfig cfg;
  cfg.seed = 5;
  cfg.max_disruptions = 4;
  for (std::uint64_t i = 0; i < 16; ++i) {
    std::uint64_t plan_seed = Rng::derive_seed(cfg.seed, i);
    FaultPlan a = biased_random_plan(spec, cfg, plan_seed);
    FaultPlan b = biased_random_plan(spec, cfg, plan_seed);
    EXPECT_EQ(a.str(), b.str());
    // Per-target windows from paired events must not overlap even after
    // the bias retiming pass.
    auto units = pair_units(a);
    for (std::size_t x = 0; x < units.size(); ++x) {
      for (std::size_t y = x + 1; y < units.size(); ++y) {
        if (units[x].fault.target != units[y].fault.target) continue;
        if (!units[x].repair || !units[y].repair) continue;
        EXPECT_FALSE(units[x].fault.at < units[y].repair->at &&
                     units[y].fault.at < units[x].repair->at)
            << "seed " << plan_seed << ":\n"
            << a.str();
      }
    }
  }
}

/// Acceptance criterion: inject a lost-repair bug (every link-up event is
/// dropped before arming), search a small budget, and require the shrinker
/// to hand back a reproducer of at most two fault/repair pairs that still
/// triggers the same violation class.
TEST(ChaosSearch, InjectedLostRepairBugShrinksToTinyReproducer) {
  ScenarioSpec spec = chaos_ab_spec();
  ChaosSearchConfig cfg;
  cfg.budget = 6;
  cfg.seed = 11;
  cfg.min_disruptions = 2;
  cfg.max_disruptions = 4;
  cfg.allow_degrade = false;  // keep the fleet all link-down/link-up
  cfg.run = fast_opts();
  cfg.run.skip_repair = FaultKind::kLinkUp;  // the injected bug
  cfg.shrink.max_runs = 60;
  ChaosSearchResult r = chaos_search(spec, cfg);
  ASSERT_GT(r.violating, 0u) << "injected bug never classified as a failure";
  ASSERT_FALSE(r.findings.empty());

  const ChaosSearchFinding& f = r.findings.front();
  EXPECT_FALSE(f.classes.empty());
  auto shrunk_units = pair_units(f.shrunk);
  EXPECT_LE(shrunk_units.size(), 2u) << f.shrunk.str();
  EXPECT_GE(f.shrunk.size(), 1u);

  // The shrunk plan must still trigger at least one of the original
  // violation classes under the same injected bug.
  ChaosRunResult again =
      run_fault_plan(spec, f.shrunk, spec.seed, cfg.run);
  std::set<std::string> original(f.classes.begin(), f.classes.end());
  bool intersects = false;
  for (const auto& cls : again.classes()) {
    if (original.count(cls)) intersects = true;
  }
  EXPECT_TRUE(intersects) << f.shrunk.str();
}

TEST(ChaosSearch, ApplyEngineRejectsUnknownNames) {
  ScenarioSpec spec = chaos_ab_spec();
  EXPECT_NO_THROW(apply_engine(spec, "spec"));
  EXPECT_NO_THROW(apply_engine(spec, "pimdm"));
  EXPECT_NO_THROW(apply_engine(spec, "hpimdm"));
  EXPECT_THROW(apply_engine(spec, "densest-mode"), LogicError);
}

TEST(ChaosReproducerJson, RoundTripsAndValidates) {
  ChaosReproducer r;
  r.scenario = "chaos_ab.json";
  r.engine = "hpimdm";
  r.seed = 42;
  r.settle_s = 12.0;
  r.plan.link_down(Time::sec(20), "Link3").link_up(Time::sec(24), "Link3");
  r.classes = {"convergence-deadline"};
  r.trace = {"20.000000000s link-down Link3", "24.000000000s link-up Link3"};
  ChaosReproducer back = ChaosReproducer::from_json(r.to_json());
  EXPECT_EQ(back.scenario, r.scenario);
  EXPECT_EQ(back.engine, r.engine);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.settle_s, r.settle_s);
  EXPECT_EQ(back.plan.str(), r.plan.str());
  EXPECT_EQ(back.classes, r.classes);
  EXPECT_EQ(back.trace, r.trace);

  Json bad = r.to_json();
  bad.set("schema", "mip6-chaos-repro-v0");
  EXPECT_THROW(ChaosReproducer::from_json(bad), ParseError);
}

TEST(ViolationClassNames, RoundTrip) {
  for (ViolationClass cls :
       {ViolationClass::kAudit, ViolationClass::kConvergenceDeadline,
        ViolationClass::kTimerLeak, ViolationClass::kRetxBacklog,
        ViolationClass::kStateLeak, ViolationClass::kNeverRecovered}) {
    auto back = violation_class_from_name(violation_class_name(cls));
    ASSERT_TRUE(back.has_value()) << violation_class_name(cls);
    EXPECT_EQ(*back, cls);
  }
  EXPECT_FALSE(violation_class_from_name("gremlins").has_value());
}

}  // namespace
}  // namespace mip6
