#include "util/buffer.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(BufferWriter, IntegersAreBigEndian) {
  BufferWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090a0b0c0d0e0fULL);
  EXPECT_EQ(to_hex(w.bytes()), "0102030405060708090a0b0c0d0e0f");
}

TEST(BufferWriter, RawAppendsVerbatim) {
  BufferWriter w;
  Bytes data{0xde, 0xad, 0xbe, 0xef};
  w.raw(data);
  EXPECT_EQ(w.bytes(), data);
}

TEST(BufferWriter, ZerosAppendsPadding) {
  BufferWriter w;
  w.u8(0xff);
  w.zeros(3);
  EXPECT_EQ(to_hex(w.bytes()), "ff000000");
}

TEST(BufferWriter, PatchU16OverwritesInPlace) {
  BufferWriter w;
  w.u32(0);
  w.patch_u16(1, 0xabcd);
  EXPECT_EQ(to_hex(w.bytes()), "00abcd00");
}

TEST(BufferWriter, PatchOutOfRangeThrows) {
  BufferWriter w;
  w.u16(0);
  EXPECT_THROW(w.patch_u16(1, 1), LogicError);
  EXPECT_THROW(w.patch_u16(2, 1), LogicError);
}

TEST(BufferWriter, TakeMovesBufferOut) {
  BufferWriter w;
  w.u16(0x1234);
  Bytes b = std::move(w).take();
  EXPECT_EQ(to_hex(b), "1234");
}

TEST(BufferReader, ReadsBackWhatWriterWrote) {
  BufferWriter w;
  w.u8(7);
  w.u16(500);
  w.u32(70000);
  w.u64(1ULL << 40);
  Bytes data = std::move(w).take();
  BufferReader r(data);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 500);
  EXPECT_EQ(r.u32(), 70000u);
  EXPECT_EQ(r.u64(), 1ULL << 40);
  EXPECT_TRUE(r.empty());
}

TEST(BufferReader, UnderrunThrowsParseError) {
  Bytes data{1, 2};
  BufferReader r(data);
  EXPECT_THROW(r.u32(), ParseError);
  // Failed read must not consume.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.u16(), 0x0102);
}

TEST(BufferReader, RawAndViewConsume) {
  Bytes data{1, 2, 3, 4, 5};
  BufferReader r(data);
  Bytes head = r.raw(2);
  EXPECT_EQ(to_hex(head), "0102");
  BytesView rest = r.view(3);
  EXPECT_EQ(to_hex(rest), "030405");
  EXPECT_TRUE(r.empty());
}

TEST(BufferReader, SkipAdvances) {
  Bytes data{1, 2, 3};
  BufferReader r(data);
  r.skip(2);
  EXPECT_EQ(r.u8(), 3);
  EXPECT_THROW(r.skip(1), ParseError);
}

TEST(BufferReader, ExpectEndRejectsTrailingBytes) {
  Bytes data{1};
  BufferReader r(data);
  EXPECT_THROW(r.expect_end("msg"), ParseError);
  r.u8();
  EXPECT_NO_THROW(r.expect_end("msg"));
}

TEST(ToHex, EmptyAndValues) {
  EXPECT_EQ(to_hex({}), "");
  Bytes data{0x00, 0x0f, 0xf0, 0xff};
  EXPECT_EQ(to_hex(data), "000ff0ff");
}

}  // namespace
}  // namespace mip6
