#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mip6 {
namespace {

TEST(InternetChecksum, KnownVector) {
  // RFC 1071 §3 example: words 0x0001 0xf203 0xf4f5 0xf6f7 sum to 0x2ddf0,
  // fold to 0xddf2, complement 0x220d.
  Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  Bytes odd{0x12, 0x34, 0x56};
  Bytes even{0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(InternetChecksum, VerifyAcceptsSelfChecksummedData) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(2 + rng.uniform_int(64), 0);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    // Place checksum in the first two octets.
    data[0] = data[1] = 0;
    std::uint16_t ck = internet_checksum(data);
    data[0] = static_cast<std::uint8_t>(ck >> 8);
    data[1] = static_cast<std::uint8_t>(ck);
    EXPECT_TRUE(verify_internet_checksum(data)) << "trial " << trial;
  }
}

TEST(InternetChecksum, SingleBitCorruptionDetected) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(16, 0);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    data[0] = data[1] = 0;
    std::uint16_t ck = internet_checksum(data);
    data[0] = static_cast<std::uint8_t>(ck >> 8);
    data[1] = static_cast<std::uint8_t>(ck);
    std::size_t byte = rng.uniform_int(data.size());
    std::uint8_t bit = static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    data[byte] ^= bit;
    EXPECT_FALSE(verify_internet_checksum(data)) << "trial " << trial;
  }
}

TEST(InternetChecksum, IncrementalMatchesOneShot) {
  Bytes data{1, 2, 3, 4, 5, 6, 7};
  InternetChecksum inc;
  inc.add(BytesView(data).subspan(0, 3));  // odd split exercises carry
  inc.add(BytesView(data).subspan(3));
  EXPECT_EQ(inc.finish(), internet_checksum(data));
}

TEST(InternetChecksum, AddU16U32MatchRawBytes) {
  InternetChecksum a;
  a.add_u16(0x1234);
  a.add_u32(0x56789abc);
  Bytes raw{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc};
  EXPECT_EQ(a.finish(), internet_checksum(raw));
}

}  // namespace
}  // namespace mip6
