#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mip6 {
namespace {

TEST(InternetChecksum, KnownVector) {
  // RFC 1071 §3 example: words 0x0001 0xf203 0xf4f5 0xf6f7 sum to 0x2ddf0,
  // fold to 0xddf2, complement 0x220d.
  Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  Bytes odd{0x12, 0x34, 0x56};
  Bytes even{0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(InternetChecksum, VerifyAcceptsSelfChecksummedData) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(2 + rng.uniform_int(64), 0);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    // Place checksum in the first two octets.
    data[0] = data[1] = 0;
    std::uint16_t ck = internet_checksum(data);
    data[0] = static_cast<std::uint8_t>(ck >> 8);
    data[1] = static_cast<std::uint8_t>(ck);
    EXPECT_TRUE(verify_internet_checksum(data)) << "trial " << trial;
  }
}

TEST(InternetChecksum, SingleBitCorruptionDetected) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(16, 0);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    data[0] = data[1] = 0;
    std::uint16_t ck = internet_checksum(data);
    data[0] = static_cast<std::uint8_t>(ck >> 8);
    data[1] = static_cast<std::uint8_t>(ck);
    std::size_t byte = rng.uniform_int(data.size());
    std::uint8_t bit = static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    data[byte] ^= bit;
    EXPECT_FALSE(verify_internet_checksum(data)) << "trial " << trial;
  }
}

TEST(InternetChecksum, IncrementalMatchesOneShot) {
  Bytes data{1, 2, 3, 4, 5, 6, 7};
  InternetChecksum inc;
  inc.add(BytesView(data).subspan(0, 3));  // odd split exercises carry
  inc.add(BytesView(data).subspan(3));
  EXPECT_EQ(inc.finish(), internet_checksum(data));
}

TEST(InternetChecksum, AddU16U32MatchRawBytes) {
  InternetChecksum a;
  a.add_u16(0x1234);
  a.add_u32(0x56789abc);
  Bytes raw{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc};
  EXPECT_EQ(a.finish(), internet_checksum(raw));
}

TEST(InternetChecksum, OddAddFollowedByAddPairsAcrossBuffers) {
  // The dangling octet of an odd-length add() must pair with the FIRST
  // octet of the next buffer, exactly as if the data were contiguous —
  // not be zero-padded early.
  Bytes data{0xab, 0xcd, 0xef, 0x01, 0x23, 0x45, 0x67};
  for (std::size_t split = 1; split < data.size(); split += 2) {
    InternetChecksum inc;
    inc.add(BytesView(data).subspan(0, split));  // odd prefix
    inc.add(BytesView(data).subspan(split));
    EXPECT_EQ(inc.finish(), internet_checksum(data)) << "split " << split;
  }
}

TEST(InternetChecksum, ManyOddFragmentsMatchOneShot) {
  Bytes data{9, 8, 7, 6, 5, 4, 3, 2, 1};
  InternetChecksum inc;
  for (std::size_t i = 0; i < data.size(); ++i) {
    inc.add(BytesView(data).subspan(i, 1));  // one octet at a time
  }
  EXPECT_EQ(inc.finish(), internet_checksum(data));
}

TEST(InternetChecksum, AddU16U32InterleavedWithOddBuffers) {
  // Word adds after an odd buffer must honour the pending octet: the
  // sequence below is octet-identical to `raw`.
  Bytes odd{0x11, 0x22, 0x33};
  InternetChecksum inc;
  inc.add(odd);
  inc.add_u16(0x4455);
  inc.add(BytesView(odd).subspan(0, 1));  // another dangling octet
  inc.add_u32(0x66778899);
  Bytes raw{0x11, 0x22, 0x33, 0x44, 0x55, 0x11, 0x66, 0x77, 0x88, 0x99};
  EXPECT_EQ(inc.finish(), internet_checksum(raw));
}

TEST(InternetChecksum, FinishIsIdempotentAndNonDestructive) {
  Bytes data{0xde, 0xad, 0xbe, 0xef, 0x42};  // odd length: pending octet
  InternetChecksum inc;
  inc.add(data);
  std::uint16_t first = inc.finish();
  EXPECT_EQ(first, internet_checksum(data));
  // finish() must not consume the pending odd octet or fold the
  // accumulator in place.
  EXPECT_EQ(inc.finish(), first);
  EXPECT_EQ(inc.finish(), first);
  // ...and the accumulator must still be usable afterwards.
  inc.add_u16(0xcafe);
  Bytes extended{0xde, 0xad, 0xbe, 0xef, 0x42, 0xca, 0xfe};
  EXPECT_EQ(inc.finish(), internet_checksum(extended));
}

TEST(InternetChecksum, EmptyAndAllZeroInputs) {
  InternetChecksum empty;
  EXPECT_EQ(empty.finish(), 0xffff);  // ~0 folded
  EXPECT_EQ(internet_checksum(Bytes{}), 0xffff);
  Bytes zeros(8, 0);
  EXPECT_EQ(internet_checksum(zeros), 0xffff);
  InternetChecksum inc;
  inc.add(BytesView(zeros).subspan(0, 3));
  inc.add(BytesView(zeros).subspan(3));
  EXPECT_EQ(inc.finish(), 0xffff);
}

}  // namespace
}  // namespace mip6
