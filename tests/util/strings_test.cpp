#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a::b", ':');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, EmptyStringYieldsOneEmptyField) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparator) {
  auto parts = split("x,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(FmtDouble, FixedDecimals) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(FmtBytes, Units) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KiB");
  EXPECT_EQ(fmt_bytes(1536.0 * 1024), "1.5 MiB");
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

}  // namespace
}  // namespace mip6
