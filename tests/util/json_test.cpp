#include "util/json.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");

  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(Json::parse("\"a b\"").as_string(), "a b");
}

TEST(Json, ObjectKeepsInsertionOrderAndReplaces) {
  Json o = Json::object();
  o.set("b", 1);
  o.set("a", 2);
  o.set("b", 3);
  EXPECT_EQ(o.dump(), "{\"b\":3,\"a\":2}");
  EXPECT_TRUE(o.contains("a"));
  EXPECT_FALSE(o.contains("c"));
  EXPECT_DOUBLE_EQ(o["b"].as_number(), 3.0);
  EXPECT_THROW(o["missing"], LogicError);
}

TEST(Json, NestedDocumentRoundTrips) {
  Json doc = Json::object();
  doc.set("schema", "mip6-bench-v1");
  Json metrics = Json::object();
  metrics.set("ns_per_event", 123.5);
  doc.set("metrics", std::move(metrics));
  Json rows = Json::array();
  Json row = Json::object();
  row.set("routers", 8);
  rows.push_back(std::move(row));
  doc.set("rows", std::move(rows));

  Json back = Json::parse(doc.dump(2));
  EXPECT_EQ(back["schema"].as_string(), "mip6-bench-v1");
  EXPECT_DOUBLE_EQ(back["metrics"]["ns_per_event"].as_number(), 123.5);
  ASSERT_EQ(back["rows"].size(), 1u);
  EXPECT_DOUBLE_EQ(back["rows"].at(0)["routers"].as_number(), 8.0);
}

TEST(Json, StringEscapes) {
  Json s(std::string("a\"b\\c\nd\te"));
  std::string dumped = s.dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json::parse(dumped).as_string(), "a\"b\\c\nd\te");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::parse("tru"), ParseError);
  EXPECT_THROW(Json::parse("1 2"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), ParseError);
  EXPECT_THROW(Json::parse("nan"), ParseError);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(1).as_string(), LogicError);
  EXPECT_THROW(Json("x").as_number(), LogicError);
  EXPECT_THROW(Json().push_back(Json(1)), LogicError);
  EXPECT_THROW(Json::array().set("k", Json(1)), LogicError);
}

TEST(Json, PrettyPrintParsesBack) {
  Json doc = Json::parse("{\"a\":[1,2,{\"b\":null}],\"c\":true}");
  Json back = Json::parse(doc.dump(2));
  EXPECT_EQ(back.dump(), doc.dump());
}

}  // namespace
}  // namespace mip6
