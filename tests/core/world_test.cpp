#include "core/world.hpp"

#include <gtest/gtest.h>

#include "core/figure1.hpp"
#include "core/random_topology.hpp"

namespace mip6 {
namespace {

TEST(World, LinksGetAutoPrefixes) {
  World w(1);
  Link& l1 = w.add_link("L1");
  Link& l2 = w.add_link("L2", "2001:db8:aa::/64");
  EXPECT_EQ(w.plan().prefix_of(l1.id()).str(), "2001:db8:1::/64");
  EXPECT_EQ(w.plan().prefix_of(l2.id()).str(), "2001:db8:aa::/64");
}

TEST(World, RouterGetsAddressesOnEveryLink) {
  World w(1);
  Link& l1 = w.add_link("L1");
  Link& l2 = w.add_link("L2");
  NodeRuntime& r = w.add_router("R", {&l1, &l2});
  EXPECT_TRUE(
      w.plan().prefix_of(l1.id()).contains(r.address_on(l1)));
  EXPECT_TRUE(
      w.plan().prefix_of(l2.id()).contains(r.address_on(l2)));
  EXPECT_NE(r.iface_on(l1), r.iface_on(l2));
}

TEST(World, FirstRouterBecomesDefaultUnlessOverridden) {
  World w(1);
  Link& lan = w.add_link("L");
  NodeRuntime& r1 = w.add_router("R1", {&lan});
  NodeRuntime& r2 = w.add_router("R2", {&lan});
  EXPECT_EQ(*w.plan().default_router(lan.id()), r1.address_on(lan));
  w.set_link_router(lan, r2);
  EXPECT_EQ(*w.plan().default_router(lan.id()), r2.address_on(lan));
}

TEST(World, HostWithoutRouterThrows) {
  World w(1);
  Link& lan = w.add_link("L");
  EXPECT_THROW(w.add_host("H", lan), LogicError);
}

TEST(World, HostHomeAddressOnHomePrefix) {
  World w(1);
  Link& lan = w.add_link("L");
  w.add_router("R", {&lan});
  NodeRuntime& h = w.add_host("H", lan);
  w.finalize();
  EXPECT_TRUE(w.plan().prefix_of(lan.id()).contains(h.mn->home_address()));
  EXPECT_TRUE(h.stack->owns_address(h.mn->home_address()));
  EXPECT_FALSE(h.mn->away_from_home());
}

TEST(World, LookupByName) {
  World w(1);
  Link& lan = w.add_link("L");
  w.add_router("R", {&lan});
  w.add_host("H", lan);
  EXPECT_EQ(w.router_by_name("R").node->name(), "R");
  EXPECT_EQ(w.host_by_name("H").node->name(), "H");
  EXPECT_THROW(w.router_by_name("H"), LogicError);
  EXPECT_THROW(w.host_by_name("R"), LogicError);
}

TEST(Figure1Topology, MatchesPaperWiring) {
  Figure1 f = build_figure1();
  World& w = *f.world;
  // 5 routers, 4 hosts, 6 links.
  EXPECT_EQ(w.routers().size(), 5u);
  EXPECT_EQ(w.hosts().size(), 4u);
  EXPECT_EQ(w.net().links().size(), 6u);

  // Home agents per the paper: A on L1, B on L2, C on L3, D on L4+L5, E on
  // L6.
  EXPECT_EQ(*w.plan().default_router(f.link1->id()),
            f.a->address_on(*f.link1));
  EXPECT_EQ(*w.plan().default_router(f.link2->id()),
            f.b->address_on(*f.link2));
  EXPECT_EQ(*w.plan().default_router(f.link3->id()),
            f.c->address_on(*f.link3));
  EXPECT_EQ(*w.plan().default_router(f.link4->id()),
            f.d->address_on(*f.link4));
  EXPECT_EQ(*w.plan().default_router(f.link5->id()),
            f.d->address_on(*f.link5));
  EXPECT_EQ(*w.plan().default_router(f.link6->id()),
            f.e->address_on(*f.link6));

  // Receiver 3 is homed on Link 4, so its home agent is Router D.
  EXPECT_EQ(f.recv3->mn->home_agent(), f.d->address_on(*f.link4));

  // Unicast distances over the router graph (links on the path).
  GlobalRouting& routing = w.routing();
  EXPECT_EQ(routing.link_distance(f.link1->id(), f.link2->id()), 1);
  EXPECT_EQ(routing.link_distance(f.link1->id(), f.link4->id()), 3);
  EXPECT_EQ(routing.link_distance(f.link1->id(), f.link6->id()), 3);
  EXPECT_EQ(routing.link_distance(f.link4->id(), f.link6->id()), 2);
}

TEST(Figure1Topology, LinkAccessorByIndex) {
  Figure1 f = build_figure1();
  EXPECT_EQ(&f.link(1), f.link1);
  EXPECT_EQ(&f.link(6), f.link6);
  EXPECT_THROW(f.link(0), LogicError);
  EXPECT_THROW(f.link(7), LogicError);
}

TEST(RandomTopology, ConnectedAndRoutable) {
  RandomTopologyParams params;
  params.routers = 10;
  params.extra_links = 3;
  params.seed = 77;
  RandomTopology t = build_random_topology(params);
  t.world->finalize();
  ASSERT_EQ(t.routers.size(), 10u);
  ASSERT_EQ(t.stub_links.size(), 10u);
  // Every stub reachable from every other stub.
  for (Link* a : t.stub_links) {
    for (Link* b : t.stub_links) {
      EXPECT_GE(t.world->routing().link_distance(a->id(), b->id()), 0)
          << a->name() << " -> " << b->name();
    }
  }
}

TEST(RandomTopology, DeterministicPerSeed) {
  RandomTopologyParams params;
  params.routers = 6;
  params.seed = 5;
  RandomTopology t1 = build_random_topology(params);
  RandomTopology t2 = build_random_topology(params);
  ASSERT_EQ(t1.transit_links.size(), t2.transit_links.size());
  // Same shape: identical attachment counts per router.
  for (std::size_t i = 0; i < t1.routers.size(); ++i) {
    EXPECT_EQ(t1.routers[i]->node->iface_count(),
              t2.routers[i]->node->iface_count());
  }
}

}  // namespace
}  // namespace mip6
