// Line and star topology builders: shape, reachability, and multicast
// end-to-end across each (the two diameter extremes for the sweeps).
#include <gtest/gtest.h>

#include "core/random_topology.hpp"
#include "core/traffic.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::88");
constexpr std::uint16_t kPort = 9000;

TEST(LineTopology, ShapeAndDistances) {
  RandomTopology t = build_line_topology(6);
  t.world->finalize();
  ASSERT_EQ(t.routers.size(), 6u);
  ASSERT_EQ(t.stub_links.size(), 6u);
  ASSERT_EQ(t.transit_links.size(), 5u);
  // End-to-end link distance = transits + both stubs' hops.
  EXPECT_EQ(t.world->routing().link_distance(t.stub_links[0]->id(),
                                             t.stub_links[5]->id()),
            6);
}

TEST(StarTopology, ShapeAndDistances) {
  RandomTopology t = build_star_topology(5);
  t.world->finalize();
  ASSERT_EQ(t.routers.size(), 6u);  // core + 5 edges
  ASSERT_EQ(t.stub_links.size(), 6u);
  // Any edge stub to any other edge stub: 3 link hops via the core
  // (transit in, transit out, destination stub).
  EXPECT_EQ(t.world->routing().link_distance(t.stub_links[1]->id(),
                                             t.stub_links[2]->id()),
            3);
  // Core stub to edge stub: 2.
  EXPECT_EQ(t.world->routing().link_distance(t.stub_links[0]->id(),
                                             t.stub_links[3]->id()),
            2);
}

class ShapeSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ShapeSweep, MulticastEndToEnd) {
  const std::string shape = GetParam();
  RandomTopology t = shape == "line" ? build_line_topology(5)
                     : shape == "star"
                         ? build_star_topology(4)
                         : build_random_topology({8, 2, 17});
  World& world = *t.world;
  NodeRuntime& sender = world.add_host("S", *t.stub_links.front());
  NodeRuntime& receiver = world.add_host("R", *t.stub_links.back());
  world.finalize();

  GroupReceiverApp app(*receiver.stack, kPort);
  receiver.service->subscribe(kGroup);
  CbrSource source(
      world.scheduler(),
      [&](Bytes p) {
        sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  world.run_until(Time::sec(30));
  EXPECT_GT(app.unique_received(), 280u) << shape;
  EXPECT_EQ(app.duplicates(), 0u) << shape;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Values("line", "star", "random"));

}  // namespace
}  // namespace mip6
