// MobileMulticastService behaviour: strategy mechanics at home vs away,
// mid-run strategy switches, multi-group subscriptions, and several mobile
// nodes sharing one home agent.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/traffic.hpp"
#include "core/world.hpp"

namespace mip6 {
namespace {

const Address kG1 = Address::parse("ff1e::a1");
const Address kG2 = Address::parse("ff1e::a2");
constexpr std::uint16_t kPort = 9000;

struct Roam {
  World world;
  Link& hl;
  Link& tl;
  Link& fl;
  NodeRuntime& ha;
  NodeRuntime& fr;
  NodeRuntime& mn;
  NodeRuntime& src;

  explicit Roam(StrategyOptions strategy = {}, std::uint64_t seed = 1)
      : world(seed), hl(world.add_link("HL")), tl(world.add_link("TL")),
        fl(world.add_link("FL")), ha(world.add_router("HA", {&hl, &tl})),
        fr(world.add_router("FR", {&tl, &fl})),
        mn(world.add_host("MN", hl, strategy)),
        src(world.add_host("SRC", hl)) {
    world.finalize();
  }
};

TEST(MobileService, AtHomeTunnelStrategyBehavesLocally) {
  // While at home the tunnel strategy must not tunnel anything: sending is
  // native and no binding exists.
  Roam t({McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  GroupReceiverApp app(*t.src.stack, kPort);
  t.src.service->subscribe(kG1);
  t.mn.service->subscribe(kG1);
  for (int i = 0; i < 10; ++i) {
    CbrPayload p;
    p.seq = static_cast<std::uint32_t>(i);
    t.mn.service->send_multicast(kG1, kPort, kPort, p.encode(32));
  }
  t.world.run_until(Time::sec(2));
  EXPECT_EQ(app.unique_received(), 10u);
  EXPECT_EQ(t.world.net().counters().get("mn/encap"), 0u);
  EXPECT_EQ(t.ha.ha->cache().size(), 0u);
}

TEST(MobileService, MultipleGroupsCarriedInOneBindingUpdate) {
  Roam t({McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  t.mn.service->subscribe(kG1);
  t.mn.service->subscribe(kG2);
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(3));
  EXPECT_TRUE(t.ha.ha->represents(kG1));
  EXPECT_TRUE(t.ha.ha->represents(kG2));
  const BindingCache::Entry* e =
      t.ha.ha->cache().find(t.mn.mn->home_address());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->groups.size(), 2u);
}

TEST(MobileService, StrategySwitchWhileAwayRewiresDelivery) {
  Roam t({McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  GroupReceiverApp app(*t.mn.stack, kPort);
  t.mn.service->subscribe(kG1);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.src.service->send_multicast(kG1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(10));
  std::uint64_t tunneled_before =
      t.world.net().counters().get("ha/encap-multicast");
  EXPECT_GT(tunneled_before, 0u);

  // Switch to local membership: MLD join on the foreign link, and the
  // service deregisters the groups at the HA with an empty group list.
  t.mn.service->set_strategy(
      {McastStrategy::kLocalMembership, HaRegistration::kGroupListBu});
  t.world.run_until(Time::sec(30));
  EXPECT_FALSE(t.ha.ha->represents(kG1));
  // Delivery continues via the native graft path.
  EXPECT_GT(app.received_in(Time::sec(15), Time::sec(30)), 100u);
  EXPECT_GT(t.world.net().counters().get("pimdm/tx/graft"), 0u);
}

TEST(MobileService, TwoMobileNodesShareOneHomeAgentFanOut) {
  World world(5);
  Link& hl = world.add_link("HL");
  Link& tl = world.add_link("TL");
  Link& fl1 = world.add_link("FL1");
  Link& fl2 = world.add_link("FL2");
  NodeRuntime& ha = world.add_router("HA", {&hl, &tl});
  world.add_router("FR", {&tl, &fl1, &fl2});
  StrategyOptions tunnel{McastStrategy::kBidirTunnel,
                         HaRegistration::kGroupListBu};
  NodeRuntime& mn1 = world.add_host("MN1", hl, tunnel);
  NodeRuntime& mn2 = world.add_host("MN2", hl, tunnel);
  NodeRuntime& src = world.add_host("SRC", hl);
  world.finalize();

  GroupReceiverApp app1(*mn1.stack, kPort);
  GroupReceiverApp app2(*mn2.stack, kPort);
  mn1.service->subscribe(kG1);
  mn2.service->subscribe(kG1);
  CbrSource source(
      world.scheduler(),
      [&](Bytes p) {
        src.service->send_multicast(kG1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  mn1.mn->move_to(fl1);
  mn2.mn->move_to(fl2);
  world.run_until(Time::sec(20));

  // Both tunnels served: the paper's point that per-MN unicast copies
  // multiply the HA's and the network's load.
  EXPECT_GT(app1.received_in(Time::sec(5), Time::sec(20)), 100u);
  EXPECT_GT(app2.received_in(Time::sec(5), Time::sec(20)), 100u);
  EXPECT_EQ(ha.ha->cache().size(), 2u);
  // One encapsulation per MN per datagram: roughly twice the stream.
  std::uint64_t encaps = world.net().counters().get("ha/encap-multicast");
  EXPECT_GT(encaps, 300u);
}

TEST(MobileService, UnsubscribeStopsLocalDelivery) {
  Roam t;  // local membership
  GroupReceiverApp app(*t.mn.stack, kPort);
  t.mn.service->subscribe(kG1);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.src.service->send_multicast(kG1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  t.world.run_until(Time::sec(5));
  std::uint64_t before = app.unique_received();
  ASSERT_GT(before, 30u);
  t.mn.service->unsubscribe(kG1);
  t.world.run_until(Time::sec(10));
  // The receive filter is gone; at most a couple of in-flight datagrams.
  EXPECT_LE(app.unique_received(), before + 2);
}

TEST(MobileService, SenderStrategySendsWithCorrectSourceAddress) {
  // Reverse tunnel: receivers see the *home* address as source even while
  // the sender roams (the paper's "home address as source of the inner
  // datagram").
  Roam t({McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  std::vector<Address> sources;
  t.src.service->subscribe(kG1);  // real MLD membership on the home link
  t.src.stack->set_proto_handler(
      proto::kUdp, [&](const ParsedDatagram& d, const Packet&, IfaceId) {
        sources.push_back(d.hdr.src);
      });
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(2));
  CbrPayload p;
  p.seq = 0;
  t.mn.service->send_multicast(kG1, kPort, kPort, p.encode(32));
  t.world.run_until(Time::sec(3));
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0], t.mn.mn->home_address());

  // Local sending instead: care-of address as source.
  t.mn.service->set_strategy(
      {McastStrategy::kTunnelHaToMh, HaRegistration::kGroupListBu});
  p.seq = 1;
  t.mn.service->send_multicast(kG1, kPort, kPort, p.encode(32));
  // Native send from the foreign link: a fresh (CoA, G) tree must flood
  // its way to the home link, so allow a moment.
  t.world.run_until(Time::sec(8));
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[1], t.mn.mn->care_of());
}

}  // namespace
}  // namespace mip6
