#include "core/mobility.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"

namespace mip6 {
namespace {

struct ThreeLinks {
  World world;
  Link& l1;
  Link& l2;
  Link& l3;
  NodeRuntime* host;

  ThreeLinks()
      : world(11), l1(world.add_link("L1")), l2(world.add_link("L2")),
        l3(world.add_link("L3")) {
    world.add_router("R", {&l1, &l2, &l3});
    host = &world.add_host("H", l1);
    world.finalize();
  }
};

TEST(ItineraryMover, MovesAtScriptedTimes) {
  ThreeLinks t;
  ItineraryMover mover(*t.host->mn, t.world.scheduler());
  std::vector<std::pair<Time, Link*>> moves;
  mover.set_on_move([&](Link& l) { moves.emplace_back(t.world.now(), &l); });
  mover.add_step(Time::sec(10), t.l2);
  mover.add_step(Time::sec(20), t.l3);
  t.world.run_until(Time::sec(30));
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0], std::make_pair(Time::sec(10), &t.l2));
  EXPECT_EQ(moves[1], std::make_pair(Time::sec(20), &t.l3));
  EXPECT_EQ(t.host->node->iface(0).link(), &t.l3);
  // The mobile node re-attached and formed a care-of address.
  EXPECT_TRUE(t.host->mn->away_from_home());
}

TEST(RandomMover, MovesAtRoughlyConfiguredRate) {
  ThreeLinks t;
  RandomMover mover(*t.host->mn, t.world.net().rng(),
                    {&t.l1, &t.l2, &t.l3}, Time::sec(50));
  mover.start(Time::sec(1));
  t.world.run_until(Time::sec(3000));
  // Expected ~60 moves at mean dwell 50 s; accept a broad band.
  EXPECT_GT(mover.moves(), 30u);
  EXPECT_LT(mover.moves(), 120u);
}

TEST(RandomMover, NeverMovesToCurrentLink) {
  ThreeLinks t;
  RandomMover mover(*t.host->mn, t.world.net().rng(),
                    {&t.l1, &t.l2, &t.l3}, Time::sec(10));
  Link* last = t.host->node->iface(0).link();
  bool self_move = false;
  mover.set_on_move([&](Link& l) {
    if (&l == last) self_move = true;
    last = &l;
  });
  mover.start(Time::sec(1));
  t.world.run_until(Time::sec(500));
  EXPECT_GT(mover.moves(), 10u);
  EXPECT_FALSE(self_move);
}

TEST(RandomMover, StopHaltsMovement) {
  ThreeLinks t;
  RandomMover mover(*t.host->mn, t.world.net().rng(), {&t.l1, &t.l2},
                    Time::sec(10));
  mover.start(Time::sec(1));
  t.world.run_until(Time::sec(100));
  std::uint64_t n = mover.moves();
  mover.stop();
  t.world.run_until(Time::sec(1000));
  EXPECT_EQ(mover.moves(), n);
}

TEST(RandomMover, EmptyCandidatesThrows) {
  ThreeLinks t;
  EXPECT_THROW(
      RandomMover(*t.host->mn, t.world.net().rng(), {}, Time::sec(1)),
      LogicError);
}

}  // namespace
}  // namespace mip6
