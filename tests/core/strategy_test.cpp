// Parameterized sweep over the paper's four approaches (× both HA
// registration variants for tunnel reception): every combination must keep
// a mobile receiver and a mobile sender connected across movements, with
// the strategy-specific mechanics (tunnels vs grafts) actually engaged.
#include <gtest/gtest.h>

#include "core/figure1.hpp"
#include "core/metrics.hpp"
#include "core/traffic.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

struct StrategyCase {
  const char* name;
  StrategyOptions opts;
};

class StrategySweep : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategySweep, MobileReceiverSurvivesMove) {
  const StrategyOptions opts = GetParam().opts;
  Figure1 f = build_figure1(1, {}, opts);
  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv3->stack, kPort);
  f.recv3->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  f.world->run_until(Time::sec(10));
  ASSERT_GT(app.unique_received(), 50u) << GetParam().name;

  // Move to the pruned Link 6, then onward to Link 5.
  f.recv3->mn->move_to(*f.link6);
  f.world->run_until(Time::sec(40));
  std::uint64_t after_first_move = app.received_in(Time::sec(10), Time::sec(40));
  EXPECT_GT(after_first_move, 200u) << GetParam().name;

  f.recv3->mn->move_to(*f.link5);
  f.world->run_until(Time::sec(70));
  EXPECT_GT(app.received_in(Time::sec(40), Time::sec(70)), 200u)
      << GetParam().name;

  // Mechanics: tunnel-receive strategies decapsulate at the MN; local
  // strategies graft instead.
  auto& counters = f.world->net().counters();
  if (receives_locally(opts.strategy)) {
    EXPECT_EQ(counters.get("ha/encap-multicast"), 0u) << GetParam().name;
    EXPECT_GE(counters.get("pimdm/tx/graft"), 1u) << GetParam().name;
  } else {
    EXPECT_GT(counters.get("ha/encap-multicast"), 0u) << GetParam().name;
    EXPECT_GT(counters.get("mn/decap"), 0u) << GetParam().name;
  }
}

TEST_P(StrategySweep, MobileSenderSurvivesMove) {
  const StrategyOptions opts = GetParam().opts;
  Figure1 f = build_figure1(2, {}, opts);
  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv2->stack, kPort);
  f.recv2->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  f.world->run_until(Time::sec(10));
  ASSERT_GT(app.unique_received(), 50u) << GetParam().name;

  f.sender->mn->move_to(*f.link6);
  f.world->run_until(Time::sec(60));
  // Delivery continues after the handoff (allowing the handoff gap).
  EXPECT_GT(app.received_in(Time::sec(20), Time::sec(60)), 300u)
      << GetParam().name;

  auto& counters = f.world->net().counters();
  const Address coa = f.sender->mn->care_of();
  ASSERT_FALSE(coa.is_unspecified());
  bool coa_tree = false;
  for (const auto& r : f.world->routers()) {
    if (r->pim->has_entry(coa, group)) coa_tree = true;
  }
  if (sends_locally(opts.strategy)) {
    // New source-rooted tree from the care-of address.
    EXPECT_TRUE(coa_tree) << GetParam().name;
  } else {
    // Reverse tunnel: the home-rooted tree is reused, no care-of tree.
    EXPECT_FALSE(coa_tree) << GetParam().name;
    EXPECT_GT(counters.get("mn/encap"), 0u) << GetParam().name;
    EXPECT_GT(counters.get("ha/decap-multicast"), 0u) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApproaches, StrategySweep,
    ::testing::Values(
        StrategyCase{"local_membership",
                     {McastStrategy::kLocalMembership,
                      HaRegistration::kGroupListBu}},
        StrategyCase{"bidir_tunnel_grouplist",
                     {McastStrategy::kBidirTunnel,
                      HaRegistration::kGroupListBu}},
        StrategyCase{"bidir_tunnel_tunnelmld",
                     {McastStrategy::kBidirTunnel,
                      HaRegistration::kTunnelMld}},
        StrategyCase{"tunnel_mh_to_ha",
                     {McastStrategy::kTunnelMhToHa,
                      HaRegistration::kGroupListBu}},
        StrategyCase{"tunnel_ha_to_mh_grouplist",
                     {McastStrategy::kTunnelHaToMh,
                      HaRegistration::kGroupListBu}},
        StrategyCase{"tunnel_ha_to_mh_tunnelmld",
                     {McastStrategy::kTunnelHaToMh,
                      HaRegistration::kTunnelMld}}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      return info.param.name;
    });

TEST(StrategyHelpers, TableOneMapping) {
  // Table 1 of the paper: the 2x2 send/receive matrix.
  EXPECT_TRUE(receives_locally(McastStrategy::kLocalMembership));
  EXPECT_TRUE(sends_locally(McastStrategy::kLocalMembership));
  EXPECT_FALSE(receives_locally(McastStrategy::kBidirTunnel));
  EXPECT_FALSE(sends_locally(McastStrategy::kBidirTunnel));
  EXPECT_TRUE(receives_locally(McastStrategy::kTunnelMhToHa));
  EXPECT_FALSE(sends_locally(McastStrategy::kTunnelMhToHa));
  EXPECT_FALSE(receives_locally(McastStrategy::kTunnelHaToMh));
  EXPECT_TRUE(sends_locally(McastStrategy::kTunnelHaToMh));
}

TEST(StrategyHelpers, Names) {
  EXPECT_STREQ(strategy_name(McastStrategy::kLocalMembership),
               "local-membership");
  EXPECT_STREQ(strategy_name(McastStrategy::kBidirTunnel), "bidir-tunnel");
  EXPECT_STREQ(strategy_name(McastStrategy::kTunnelMhToHa),
               "tunnel-mh-to-ha");
  EXPECT_STREQ(strategy_name(McastStrategy::kTunnelHaToMh),
               "tunnel-ha-to-mh");
  EXPECT_STREQ(strategy_name(McastStrategy::kHierProxy), "hier-proxy");
  EXPECT_STREQ(strategy_name(McastStrategy::kMcastMobility),
               "mcast-mobility");
}

TEST(StrategyHelpers, NamesRoundTripForEveryStrategy) {
  for (McastStrategy s : kAllStrategies) {
    auto back = strategy_from_name(strategy_name(s));
    ASSERT_TRUE(back.has_value()) << strategy_name(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(strategy_from_name("teleport").has_value());
  for (HaRegistration r :
       {HaRegistration::kGroupListBu, HaRegistration::kTunnelMld}) {
    auto back = registration_from_name(registration_name(r));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, r);
  }
  EXPECT_FALSE(registration_from_name("carrier-pigeon").has_value());
}

}  // namespace
}  // namespace mip6
