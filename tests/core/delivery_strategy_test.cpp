// Behaviour of the two post-paper delivery strategies, exercised through
// the same MobileMulticastService surface the four paper approaches use:
// the hierarchical domain proxy keeps tree state (and the home agent)
// untouched across intra-domain handoffs, and multicast-based mobility
// repairs handoffs with AR join/prune instead of per-MN tunnels.
#include <gtest/gtest.h>

#include "core/delivery_strategy.hpp"
#include "core/traffic.hpp"
#include "core/world.hpp"
#include "mipv6/mobile_node.hpp"

namespace mip6 {
namespace {

const Address kG1 = Address::parse("ff1e::a1");
constexpr std::uint16_t kPort = 9000;

// Home link + backbone + two foreign links behind one access router (the
// hier-proxy domain: P proxies both FL1 and FL2, so FL1 -> FL2 is an
// intra-domain move).
struct Domain {
  World world;
  Link& hl;
  Link& tl;
  Link& fl1;
  Link& fl2;
  NodeRuntime& ha;
  NodeRuntime& p;
  NodeRuntime& mn;
  NodeRuntime& src;

  explicit Domain(StrategyOptions strategy, std::uint64_t seed = 1)
      : world(seed), hl(world.add_link("HL")), tl(world.add_link("TL")),
        fl1(world.add_link("FL1")), fl2(world.add_link("FL2")),
        ha(world.add_router("HA", {&hl, &tl})),
        p(world.add_router("P", {&tl, &fl1, &fl2})),
        mn(world.add_host("MN", hl, strategy)),
        src(world.add_host("SRC", hl)) {
    world.set_link_proxy(fl1, p);
    world.set_link_proxy(fl2, p);
    world.finalize();
  }
};

// Same shape but with a distinct access router per foreign link, so a
// FL1 -> FL2 move changes the access router (the mcast-mobility case).
struct TwoAr {
  World world;
  Link& hl;
  Link& tl;
  Link& fl1;
  Link& fl2;
  NodeRuntime& ha;
  NodeRuntime& ar1;
  NodeRuntime& ar2;
  NodeRuntime& mn;
  NodeRuntime& src;

  explicit TwoAr(StrategyOptions strategy, std::uint64_t seed = 1)
      : world(seed), hl(world.add_link("HL")), tl(world.add_link("TL")),
        fl1(world.add_link("FL1")), fl2(world.add_link("FL2")),
        ha(world.add_router("HA", {&hl, &tl})),
        ar1(world.add_router("AR1", {&tl, &fl1})),
        ar2(world.add_router("AR2", {&tl, &fl2})),
        mn(world.add_host("MN", hl, strategy)),
        src(world.add_host("SRC", hl)) {
    world.finalize();
  }
};

constexpr StrategyOptions kProxy{McastStrategy::kHierProxy,
                                 HaRegistration::kGroupListBu};
constexpr StrategyOptions kMm{McastStrategy::kMcastMobility,
                              HaRegistration::kGroupListBu};

TEST(HierProxy, IntraDomainMoveKeepsTreeAndHomeAgentUntouched) {
  Domain t(kProxy);
  GroupReceiverApp app(*t.mn.stack, kPort);
  t.mn.service->subscribe(kG1);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.src.service->send_multicast(kG1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));

  t.mn.mn->move_to(t.fl1);
  t.world.run_until(Time::sec(10));
  // Delivery runs through the domain proxy: one registration, tunneled
  // datagrams, and the home agent knows nothing about the group.
  EXPECT_GT(app.received_in(Time::sec(5), Time::sec(10)), 30u);
  ASSERT_NE(t.p.proxy, nullptr);
  EXPECT_EQ(t.p.proxy->registration_count(), 1u);
  EXPECT_TRUE(t.p.proxy->serves(t.mn.mn->home_address()));
  EXPECT_FALSE(t.ha.ha->represents(kG1));
  EXPECT_EQ(t.world.net().counters().get("ha/encap-multicast"), 0u);
  const std::uint64_t trees_before =
      t.world.net().counters().get("pimdm/sg-created");
  const std::uint64_t proxy_rx_before =
      t.world.net().counters().get("proxy/rx/register");

  // Intra-domain handoff: same proxy, refreshed registration. The
  // distribution tree must not grow and the HA must stay out of the path.
  t.mn.mn->move_to(t.fl2);
  t.world.run_until(Time::sec(20));
  EXPECT_GT(app.received_in(Time::sec(12), Time::sec(20)), 60u);
  EXPECT_EQ(t.p.proxy->registration_count(), 1u);
  EXPECT_TRUE(t.p.proxy->serves(t.mn.mn->home_address()));
  EXPECT_EQ(t.world.net().counters().get("pimdm/sg-created"), trees_before);
  EXPECT_GT(t.world.net().counters().get("proxy/rx/register"),
            proxy_rx_before);
  EXPECT_FALSE(t.ha.ha->represents(kG1));
  EXPECT_EQ(t.world.net().counters().get("ha/encap-multicast"), 0u);
}

TEST(HierProxy, RefreshKeepsRegistrationAlivePastLifetime) {
  Domain t(kProxy);
  GroupReceiverApp app(*t.mn.stack, kPort);
  t.mn.service->subscribe(kG1);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.src.service->send_multicast(kG1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  t.mn.mn->move_to(t.fl1);
  // Far beyond the 260 s registration lifetime: the MN's refresh timer
  // must keep the soft state (and the stream) alive.
  t.world.run_until(Time::sec(600));
  EXPECT_TRUE(t.p.proxy->serves(t.mn.mn->home_address()));
  EXPECT_EQ(t.world.net().counters().get("proxy/expired"), 0u);
  EXPECT_GT(app.received_in(Time::sec(550), Time::sec(600)), 400u);
}

TEST(HierProxy, ReturningHomeDeregisters) {
  Domain t(kProxy);
  t.mn.service->subscribe(kG1);
  t.mn.mn->move_to(t.fl1);
  t.world.run_until(Time::sec(5));
  ASSERT_TRUE(t.p.proxy->serves(t.mn.mn->home_address()));
  t.mn.mn->move_to(t.hl);
  t.world.run_until(Time::sec(10));
  EXPECT_EQ(t.p.proxy->registration_count(), 0u);
  EXPECT_TRUE(t.p.proxy->represented_groups().empty());
}

TEST(McastMobility, HandoffPrunesOldAccessRouterWithinDeadline) {
  TwoAr t(kMm);
  GroupReceiverApp app(*t.mn.stack, kPort);
  t.mn.service->subscribe(kG1);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.src.service->send_multicast(kG1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  const Address g_mn = reachability_group(*t.mn.mn);

  t.mn.mn->move_to(t.fl1);
  t.world.run_until(Time::sec(10));
  ASSERT_NE(t.ar1.ar_agent, nullptr);
  EXPECT_TRUE(t.ar1.ar_agent->joined_for(t.mn.mn->home_address()));
  EXPECT_TRUE(t.ar1.mld->has_listeners(t.ar1.iface_on(t.fl1), g_mn));
  EXPECT_GT(app.received_in(Time::sec(5), Time::sec(10)), 30u);

  // Handoff: join-new / prune-old. The old AR must drop its injected
  // listener well within T_MLI — one second is generous for one control
  // datagram.
  t.mn.mn->move_to(t.fl2);
  t.world.run_until(Time::sec(11));
  EXPECT_FALSE(t.ar1.ar_agent->joined_for(t.mn.mn->home_address()));
  EXPECT_FALSE(t.ar1.mld->has_listeners(t.ar1.iface_on(t.fl1), g_mn));
  EXPECT_TRUE(t.ar2.ar_agent->joined_for(t.mn.mn->home_address()));
  EXPECT_TRUE(t.ar2.mld->has_listeners(t.ar2.iface_on(t.fl2), g_mn));
  t.world.run_until(Time::sec(20));
  EXPECT_GT(app.received_in(Time::sec(12), Time::sec(20)), 60u);
}

TEST(McastMobility, DeliversViaReachabilityGroupNotUnicastTunnels) {
  TwoAr t(kMm);
  GroupReceiverApp app(*t.mn.stack, kPort);
  t.mn.service->subscribe(kG1);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.src.service->send_multicast(kG1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  t.mn.mn->move_to(t.fl1);
  t.world.run_until(Time::sec(10));
  EXPECT_GT(app.received_in(Time::sec(5), Time::sec(10)), 30u);
  // The HA re-originates into G_mn; no per-MN unicast multicast tunnel.
  EXPECT_GT(t.world.net().counters().get("ha/encap-mcast-coa"), 0u);
  EXPECT_EQ(t.world.net().counters().get("ha/encap-multicast"), 0u);
}

TEST(McastMobility, AtHomeTouchesNoAccessRouter) {
  TwoAr t(kMm);
  GroupReceiverApp app(*t.mn.stack, kPort);
  t.mn.service->subscribe(kG1);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.src.service->send_multicast(kG1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  t.world.run_until(Time::sec(5));
  EXPECT_GT(app.unique_received(), 30u);
  EXPECT_EQ(t.ar1.ar_agent->join_count(), 0u);
  EXPECT_EQ(t.ar2.ar_agent->join_count(), 0u);
  EXPECT_EQ(t.world.net().counters().get("ha/encap-mcast-coa"), 0u);
}

TEST(McastMobility, RefreshSurvivesListenerInterval) {
  TwoAr t(kMm);
  GroupReceiverApp app(*t.mn.stack, kPort);
  t.mn.service->subscribe(kG1);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.src.service->send_multicast(kG1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  t.mn.mn->move_to(t.fl1);
  // Past T_MLI = 260 s: the MN's ArJoin refresh must keep the injected
  // listener (and the stream) alive.
  t.world.run_until(Time::sec(600));
  const Address g_mn = reachability_group(*t.mn.mn);
  EXPECT_TRUE(t.ar1.mld->has_listeners(t.ar1.iface_on(t.fl1), g_mn));
  EXPECT_GT(app.received_in(Time::sec(550), Time::sec(600)), 400u);
}

}  // namespace
}  // namespace mip6
