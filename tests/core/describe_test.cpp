#include "core/describe.hpp"

#include <gtest/gtest.h>

#include "ipv6/tunnel.hpp"
#include "ipv6/udp.hpp"
#include "mipv6/messages.hpp"
#include "mld/messages.hpp"
#include "pimdm/messages.hpp"

namespace mip6 {
namespace {

TEST(Describe, UdpDatagram) {
  Address src = Address::parse("2001:db8:1::99");
  Address dst = Address::parse("ff1e::1");
  DatagramSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.protocol = proto::kUdp;
  spec.payload = UdpDatagram{9000, 9000, Bytes(64)}.serialize(src, dst);
  std::string s = describe_datagram(build_datagram(spec));
  EXPECT_NE(s.find("IPv6 2001:db8:1::99 -> ff1e::1"), std::string::npos) << s;
  EXPECT_NE(s.find("UDP 9000->9000"), std::string::npos) << s;
}

TEST(Describe, MldReport) {
  Address src = Address::parse("fe80::1");
  Address dst = Address::parse("ff1e::1");
  MldMessage rep;
  rep.type = MldType::kReport;
  rep.group = dst;
  DatagramSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.hop_limit = 1;
  spec.protocol = proto::kIcmpv6;
  spec.payload = rep.to_icmpv6().serialize(src, dst);
  std::string s = describe_datagram(build_datagram(spec));
  EXPECT_NE(s.find("MLD Report group=ff1e::1"), std::string::npos) << s;
}

TEST(Describe, PimGraft) {
  Address src = Address::parse("fe80::2");
  Address dst = Address::parse("fe80::3");
  PimJoinPrune m = PimJoinPrune::join(dst, Address::parse("2001:db8::1"),
                                      Address::parse("ff1e::1"));
  DatagramSpec spec;
  spec.src = src;
  spec.dst = dst;
  spec.hop_limit = 1;
  spec.protocol = proto::kPim;
  spec.payload = serialize_pim(PimType::kGraft, m.body(), src, dst);
  std::string s = describe_datagram(build_datagram(spec));
  EXPECT_NE(s.find("PIM Graft"), std::string::npos) << s;
  EXPECT_NE(s.find("J(2001:db8::1,ff1e::1)"), std::string::npos) << s;
}

TEST(Describe, BindingUpdateWithGroupListAndHomeAddress) {
  BindingUpdateOption bu;
  bu.home_registration = true;
  bu.sequence = 3;
  bu.lifetime_s = 256;
  MulticastGroupListSubOption list;
  list.groups.push_back(Address::parse("ff1e::1"));
  bu.sub_options.push_back(list.encode());
  DatagramSpec spec;
  spec.src = Address::parse("2001:db8:6::99");
  spec.dst = Address::parse("2001:db8:4::4");
  spec.dest_options.push_back(bu.encode());
  spec.dest_options.push_back(
      HomeAddressOption{Address::parse("2001:db8:4::99")}.encode());
  spec.protocol = proto::kNoNext;
  std::string s = describe_datagram(build_datagram(spec));
  EXPECT_NE(s.find("BU seq=3 life=256s groups=1"), std::string::npos) << s;
  EXPECT_NE(s.find("Home=2001:db8:4::99"), std::string::npos) << s;
}

TEST(Describe, TunneledDatagramRecurses) {
  DatagramSpec inner;
  inner.src = Address::parse("2001:db8:1::99");
  inner.dst = Address::parse("ff1e::1");
  inner.protocol = proto::kUdp;
  inner.payload =
      UdpDatagram{9000, 9000, Bytes(8)}.serialize(inner.src, inner.dst);
  Bytes outer = encapsulate(build_datagram(inner),
                            Address::parse("2001:db8:4::4"),
                            Address::parse("2001:db8:6::99"));
  std::string s = describe_datagram(outer);
  EXPECT_NE(s.find("tunnel[ IPv6 2001:db8:1::99"), std::string::npos) << s;
  EXPECT_NE(s.find("UDP 9000->9000"), std::string::npos) << s;
}

TEST(Describe, MalformedNeverThrows) {
  EXPECT_NO_THROW({
    std::string s = describe_datagram(Bytes{1, 2, 3});
    EXPECT_NE(s.find("malformed"), std::string::npos);
  });
  EXPECT_NO_THROW(describe_datagram(Bytes{}));
}

}  // namespace
}  // namespace mip6
