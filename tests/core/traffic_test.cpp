#include "core/traffic.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"

namespace mip6 {
namespace {

TEST(CbrPayload, RoundTrip) {
  CbrPayload p;
  p.seq = 12345;
  p.sent_at = Time::ms(6789);
  Bytes wire = p.encode(64);
  EXPECT_EQ(wire.size(), 64u);
  CbrPayload back = CbrPayload::decode(wire);
  EXPECT_EQ(back.seq, 12345u);
  EXPECT_EQ(back.sent_at, Time::ms(6789));
}

TEST(CbrPayload, MinimumSizeEnforced) {
  CbrPayload p;
  Bytes wire = p.encode(1);
  EXPECT_EQ(wire.size(), CbrPayload::kMinSize);
}

TEST(CbrPayload, DecodeRejectsTruncation) {
  Bytes wire(CbrPayload::kMinSize - 1);
  EXPECT_THROW(CbrPayload::decode(wire), ParseError);
}

TEST(CbrSource, EmitsAtConfiguredRate) {
  Scheduler sched;
  std::vector<Time> sends;
  CbrSource src(
      sched, [&](Bytes) { sends.push_back(sched.now()); }, Time::ms(250), 32);
  src.start(Time::sec(1));
  sched.run_until(Time::sec(2));
  // t = 1.0, 1.25, 1.5, 1.75, 2.0
  ASSERT_EQ(sends.size(), 5u);
  EXPECT_EQ(sends[0], Time::sec(1));
  EXPECT_EQ(sends[4], Time::sec(2));
  EXPECT_EQ(src.sent(), 5u);
}

TEST(CbrSource, StopHalts) {
  Scheduler sched;
  int sends = 0;
  CbrSource src(sched, [&](Bytes) { ++sends; }, Time::ms(100), 32);
  src.start(Time::zero());
  sched.run_until(Time::ms(450));
  src.stop();
  sched.run_until(Time::sec(10));
  EXPECT_EQ(sends, 5);
}

TEST(CbrSource, SequenceNumbersIncrease) {
  Scheduler sched;
  std::vector<std::uint32_t> seqs;
  CbrSource src(
      sched, [&](Bytes b) { seqs.push_back(CbrPayload::decode(b).seq); },
      Time::ms(100), 32);
  src.start(Time::zero());
  sched.run_until(Time::ms(300));
  ASSERT_EQ(seqs.size(), 4u);
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
}

TEST(GroupReceiverApp, DeduplicatesBySequence) {
  World world(1);
  Link& lan = world.add_link("lan");
  world.add_router("R", {&lan});
  NodeRuntime& h = world.add_host("H", lan);
  world.finalize();
  GroupReceiverApp app(*h.stack, 9000);

  Address group = Address::parse("ff1e::3");
  h.stack->join_local_group(h.iface(), group);

  auto make = [&](std::uint32_t seq) {
    CbrPayload p;
    p.seq = seq;
    p.sent_at = world.now();
    DatagramSpec spec;
    spec.src = Address::parse("2001:db8:9::1");
    spec.dst = group;
    spec.protocol = proto::kUdp;
    spec.payload =
        UdpDatagram{9000, 9000, p.encode(32)}.serialize(spec.src, spec.dst);
    return build_datagram(spec);
  };
  h.stack->receive_as_if(h.iface(), make(1));
  h.stack->receive_as_if(h.iface(), make(1));
  h.stack->receive_as_if(h.iface(), make(2));
  EXPECT_EQ(app.unique_received(), 2u);
  EXPECT_EQ(app.duplicates(), 1u);
}

TEST(GroupReceiverApp, FiltersByPort) {
  World world(1);
  Link& lan = world.add_link("lan");
  world.add_router("R", {&lan});
  NodeRuntime& h = world.add_host("H", lan);
  world.finalize();
  GroupReceiverApp app(*h.stack, 9000);

  Address group = Address::parse("ff1e::3");
  h.stack->join_local_group(h.iface(), group);
  CbrPayload p;
  p.seq = 7;
  DatagramSpec spec;
  spec.src = Address::parse("2001:db8:9::1");
  spec.dst = group;
  spec.protocol = proto::kUdp;
  spec.payload =
      UdpDatagram{1, 8888, p.encode(32)}.serialize(spec.src, spec.dst);
  h.stack->receive_as_if(h.iface(), build_datagram(spec));
  EXPECT_EQ(app.unique_received(), 0u);
}

TEST(GroupReceiverApp, TimeQueries) {
  World world(1);
  Link& lan = world.add_link("lan");
  world.add_router("R", {&lan});
  NodeRuntime& h = world.add_host("H", lan);
  world.finalize();
  GroupReceiverApp app(*h.stack, 9000);
  Address group = Address::parse("ff1e::3");
  h.stack->join_local_group(h.iface(), group);

  auto deliver_at = [&](Time at, std::uint32_t seq) {
    world.scheduler().schedule_at(at, [&, seq] {
      CbrPayload p;
      p.seq = seq;
      p.sent_at = world.now();
      DatagramSpec spec;
      spec.src = Address::parse("2001:db8:9::1");
      spec.dst = group;
      spec.protocol = proto::kUdp;
      spec.payload =
          UdpDatagram{9000, 9000, p.encode(32)}.serialize(spec.src, spec.dst);
      h.stack->receive_as_if(h.iface(), build_datagram(spec));
    });
  };
  deliver_at(Time::sec(1), 1);
  deliver_at(Time::sec(5), 2);
  deliver_at(Time::sec(9), 3);
  world.run_until(Time::sec(10));

  EXPECT_EQ(app.first_rx_at_or_after(Time::sec(2)), Time::sec(5));
  EXPECT_EQ(app.last_rx(), Time::sec(9));
  EXPECT_EQ(app.received_in(Time::sec(0), Time::sec(6)), 2u);
  EXPECT_EQ(app.received_in(Time::sec(5), Time::sec(5)), 0u);
  EXPECT_FALSE(app.first_rx_at_or_after(Time::sec(10)).has_value());
}

}  // namespace
}  // namespace mip6
