#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/figure1.hpp"
#include "core/traffic.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

struct Fixture {
  Figure1 f = build_figure1();
  Address group = Figure1::group();
  McastMetrics metrics{f.world->net(), f.world->routing(), group, kPort};
  std::unique_ptr<CbrSource> source;

  Fixture() {
    source = std::make_unique<CbrSource>(
        f.world->scheduler(),
        [this](Bytes p) {
          f.sender->service->send_multicast(group, kPort, kPort,
                                            std::move(p));
        },
        Time::ms(100), 64);
  }
};

TEST(McastMetrics, SteadyTreeHasUnitStretch) {
  Fixture t;
  t.f.recv3->service->subscribe(t.group);
  // Reference: source on L1, member on L4.
  t.metrics.update_reference_tree(
      t.f.link1->id(), {t.f.link4->id()});
  // Let the tree settle before measuring (flood already pruned).
  t.f.world->run_until(Time::sec(30));
  t.source->start(Time::sec(30));
  t.f.world->run_until(Time::sec(60));
  t.source->stop();
  t.f.world->run_until(Time::sec(61));

  // Path L1->L2->L3->L4 = 4 links including the source LAN. The very first
  // datagram is duplicated once (both Routers B and C forward until the
  // data-triggered Assert elects one of them), so allow that sliver.
  EXPECT_GT(t.metrics.distinct_datagrams(), 250u);
  EXPECT_NEAR(t.metrics.stretch(), 1.0, 0.01);
  EXPECT_LT(t.metrics.wasted_bytes(), 500u);
  EXPECT_EQ(t.metrics.tunneled_bytes(), 0u);
}

TEST(McastMetrics, FloodCountsAsWaste) {
  Fixture t;
  t.f.recv3->service->subscribe(t.group);
  t.metrics.update_reference_tree(t.f.link1->id(), {t.f.link4->id()});
  // Start sending immediately: the initial flood reaches links outside the
  // reference tree and duplicate forwarders are active until asserts.
  t.source->start(Time::ms(10));
  t.f.world->run_until(Time::sec(30));
  EXPECT_GT(t.metrics.wasted_bytes(), 0u);
  EXPECT_GT(t.metrics.stretch(), 1.0);
}

TEST(McastMetrics, TunnelBytesTrackedAndStretchAboveOne) {
  // Receiver 3 on a bidirectional tunnel after moving to Link 6: traffic
  // goes L1..L4 natively, then is tunneled D -> Link6 (crossing L3 again).
  Figure1 f = build_figure1(1, {}, StrategyOptions{
      McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  Address group = Figure1::group();
  McastMetrics metrics(f.world->net(), f.world->routing(), group, kPort);
  f.recv3->service->subscribe(group);
  f.world->run_until(Time::sec(30));
  f.recv3->mn->move_to(*f.link6);
  f.world->run_until(Time::sec(40));
  metrics.update_reference_tree(f.link1->id(), {f.link6->id()});

  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(40));
  f.world->run_until(Time::sec(70));
  source.stop();
  f.world->run_until(Time::sec(71));

  EXPECT_GT(metrics.tunneled_bytes(), 0u);
  // Tunnel detour beats the optimal native tree: stretch strictly > 1.
  EXPECT_GT(metrics.stretch(), 1.0);
}

TEST(McastMetrics, PerLinkLastTxSupportsLeaveDelay) {
  Fixture t;
  t.f.recv3->service->subscribe(t.group);
  t.metrics.update_reference_tree(t.f.link1->id(), {t.f.link4->id()});
  t.source->start(Time::ms(10));
  t.f.world->run_until(Time::sec(10));
  EXPECT_GT(t.metrics.data_tx_count_on(t.f.link4->id()), 0u);
  Time last_before = t.metrics.last_data_tx_on(t.f.link4->id());
  EXPECT_FALSE(last_before.is_never());
  EXPECT_LE(last_before, Time::sec(10));
  EXPECT_GT(t.metrics.data_bytes_on(t.f.link4->id()), 0u);
  // A link with no data has never-valued last tx.
  EXPECT_TRUE(t.metrics.last_data_tx_on(t.f.link5->id()).is_never());
}

}  // namespace
}  // namespace mip6
