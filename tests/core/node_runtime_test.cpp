#include "core/node_runtime.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/figure1.hpp"
#include "core/traffic.hpp"

namespace mip6 {
namespace {

// Records every lifecycle call so the generic dispatch order is observable.
struct SentinelModule : ProtocolModule {
  explicit SentinelModule(std::vector<std::string>& log) : log_(&log) {}
  const char* module_kind() const override { return "sentinel"; }
  void start() override { log_->push_back("start"); }
  void stop() override { log_->push_back("stop"); }
  void reset() override { log_->push_back("reset"); }
  std::vector<std::string>* log_;
};

TEST(NodeRuntime, TypedShortcutsAreFindableModules) {
  Figure1 f = build_figure1();
  NodeRuntime& a = *f.a;
  EXPECT_TRUE(a.is_router());
  ASSERT_NE(a.pim, nullptr);
  EXPECT_EQ(a.find<Ipv6Stack>(), a.stack);
  EXPECT_EQ(a.find<MldRouter>(), a.mld);
  EXPECT_EQ(a.find<PimDmRouter>(), a.pim);
  EXPECT_EQ(a.find<HomeAgent>(), a.ha);
  EXPECT_EQ(a.find<MobileNode>(), nullptr);

  NodeRuntime& h = *f.recv3;
  EXPECT_FALSE(h.is_router());
  EXPECT_EQ(h.find<MobileNode>(), h.mn);
  EXPECT_EQ(h.find<MldHost>(), h.mld_host);
  EXPECT_EQ(h.find<MobileMulticastService>(), h.service);
  EXPECT_EQ(h.find<PimDmRouter>(), nullptr);
}

TEST(NodeRuntime, EveryModuleNamesItsKind) {
  Figure1 f = build_figure1();
  std::set<std::string> router_kinds;
  for (const auto& m : f.a->modules()) router_kinds.insert(m->module_kind());
  for (const char* k : {"ipv6", "icmpv6", "udp", "mld", "pimdm", "ha"}) {
    EXPECT_TRUE(router_kinds.contains(k)) << k;
  }
  std::set<std::string> host_kinds;
  for (const auto& m : f.recv1->modules()) host_kinds.insert(m->module_kind());
  for (const char* k : {"ipv6", "mld-host", "mn", "service"}) {
    EXPECT_TRUE(host_kinds.contains(k)) << k;
  }
}

TEST(NodeRuntime, CrashRunsReverseAndRestartRunsForward) {
  std::vector<std::string> log;  // outlives the world: stop() writes to it
  Figure1 f = build_figure1();
  // Appended last => crash (reverse order) must hit the sentinel first,
  // restart (construction order) must hit it last.
  f.recv3->emplace_module<SentinelModule>(log);
  f.world->run_until(Time::sec(2));

  log.clear();
  f.recv3->node->crash();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front(), "reset");  // default on_crash() == reset()

  log.clear();
  f.recv3->node->restart();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back(), "start");  // default on_restart() == start()
}

TEST(NodeRuntime, StopModulesIsIdempotent) {
  std::vector<std::string> log;  // outlives the world: stop() writes to it
  Figure1 f = build_figure1();
  f.recv1->emplace_module<SentinelModule>(log);
  f.recv1->stop_modules();
  EXPECT_EQ(log, std::vector<std::string>{"stop"});
  f.recv1->stop_modules();  // second call must be a no-op
  EXPECT_EQ(log, std::vector<std::string>{"stop"});
}

TEST(NodeRuntime, WorldRebuildsCleanlyInOneProcess) {
  // Teardown order (stop hosts then routers, each reverse) must leave no
  // dangling handlers: three full build/run/destroy cycles give identical
  // event counts and deliveries.
  std::uint64_t events0 = 0, delivered0 = 0;
  for (int i = 0; i < 3; ++i) {
    Figure1 f = build_figure1(7);
    GroupReceiverApp app(*f.recv3->stack, Figure1::kDataPort);
    CbrSource source(
        f.world->scheduler(),
        [&](Bytes p) {
          f.sender->service->send_multicast(Figure1::group(),
                                            Figure1::kDataPort,
                                            Figure1::kDataPort, std::move(p));
        },
        Time::ms(100), 64);
    f.recv3->service->subscribe(Figure1::group());
    source.start(Time::sec(1));
    std::uint64_t events = f.world->run_until(Time::sec(15));
    if (i == 0) {
      events0 = events;
      delivered0 = app.unique_received();
      EXPECT_GT(delivered0, 0u);
    } else {
      EXPECT_EQ(events, events0);
      EXPECT_EQ(app.unique_received(), delivered0);
    }
    f.world->stop();  // explicit teardown; destructor repeats it harmlessly
  }
}

}  // namespace
}  // namespace mip6
