// HPIM-DM wire formats: every message round-trips through the real
// serializer + checksummed header, and malformed frames land in exactly the
// taxonomy bucket the decoder documents — including the cross-engine case
// where a PIM-DM (version 2) frame hits the HPIM decoder and vice versa.
#include <gtest/gtest.h>

#include "hpimdm/messages.hpp"
#include "pimdm/messages.hpp"

namespace mip6 {
namespace {

const Address kSrc = Address::parse("2001:db8:1::1");
const Address kDst = Address::parse("2001:db8:1::2");
const Address kGroup = Address::parse("ff1e::1");
const Address kSource = Address::parse("2001:db8:9::9");

/// serialize + header-parse + body-parse, asserting the type survives.
template <typename M>
M round_trip(HpimType type, const M& msg) {
  Bytes wire = serialize_hpim(type, msg.body(), kSrc, kDst);
  ParseResult<HpimHeader> hdr = try_parse_hpim(wire, kSrc, kDst);
  EXPECT_TRUE(hdr.ok()) << hdr.failure().str();
  EXPECT_EQ(hdr.value().type, type);
  ParseResult<M> body = M::try_parse(hdr.value().body);
  EXPECT_TRUE(body.ok()) << body.failure().str();
  return body.ok() ? body.value() : M{};
}

TEST(HpimMessages, HelloRoundTrip) {
  HpimHello h;
  h.holdtime = 42;
  h.generation_id = 0xdecade01;
  HpimHello back = round_trip(HpimType::kHello, h);
  EXPECT_EQ(back.holdtime, 42);
  EXPECT_EQ(back.generation_id, 0xdecade01u);
}

TEST(HpimMessages, AckRoundTrip) {
  HpimAck a;
  a.seq = 0x01020304;
  EXPECT_EQ(round_trip(HpimType::kAck, a).seq, 0x01020304u);
}

TEST(HpimMessages, InterestRoundTrip) {
  HpimInterest i;
  i.seq = 7;
  i.source = kSource;
  i.group = kGroup;
  i.interested = true;
  HpimInterest back = round_trip(HpimType::kInterest, i);
  EXPECT_EQ(back.seq, 7u);
  EXPECT_EQ(back.source, kSource);
  EXPECT_EQ(back.group, kGroup);
  EXPECT_TRUE(back.interested);

  i.interested = false;
  EXPECT_FALSE(round_trip(HpimType::kInterest, i).interested);
}

TEST(HpimMessages, SyncRoundTripWithFragmentFlag) {
  HpimSync s;
  s.seq = 9;
  s.more = true;
  s.entries.push_back({kSource, kGroup, true});
  s.entries.push_back({Address::parse("2001:db8:9::a"),
                       Address::parse("ff1e::2"), false});
  HpimSync back = round_trip(HpimType::kSync, s);
  EXPECT_EQ(back.seq, 9u);
  EXPECT_TRUE(back.more);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].source, kSource);
  EXPECT_EQ(back.entries[0].group, kGroup);
  EXPECT_TRUE(back.entries[0].interested);
  EXPECT_FALSE(back.entries[1].interested);
}

TEST(HpimMessages, AssertRoundTrip) {
  HpimAssert a;
  a.group = kGroup;
  a.source = kSource;
  a.metric_preference = 101;
  a.metric = 3;
  HpimAssert back = round_trip(HpimType::kAssert, a);
  EXPECT_EQ(back.group, kGroup);
  EXPECT_EQ(back.source, kSource);
  EXPECT_EQ(back.metric_preference, 101u);
  EXPECT_EQ(back.metric, 3u);
}

// --- Cross-engine rejection (the coexistence contract) ---------------------

TEST(HpimMessages, PimFrameRejectedByNameAtHpimHeader) {
  Bytes pim = serialize_pim(PimType::kHello, PimHello{}.body(), kSrc, kDst);
  ParseResult<HpimHeader> r = try_parse_hpim(pim, kSrc, kDst);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().reason, ParseReason::kBadType);
  EXPECT_EQ(r.failure().str(), "bad-type: HPIM version is not 3");
}

TEST(HpimMessages, HpimFrameRejectedByNameAtPimHeader) {
  HpimInterest i;
  i.seq = 3;
  i.source = kSource;
  i.group = kGroup;
  Bytes hpim = serialize_hpim(HpimType::kInterest, i.body(), kSrc, kDst);
  ParseResult<PimHeader> r = try_parse_pim(hpim, kSrc, kDst);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().reason, ParseReason::kBadType);
  EXPECT_EQ(r.failure().str(), "bad-type: PIM version is not 2");
}

// --- Taxonomy ---------------------------------------------------------------

TEST(HpimMessages, CorruptedChecksumRejected) {
  Bytes wire = serialize_hpim(HpimType::kHello, HpimHello{}.body(), kSrc, kDst);
  wire.back() ^= 0xff;
  ParseResult<HpimHeader> r = try_parse_hpim(wire, kSrc, kDst);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().reason, ParseReason::kBadChecksum);
}

TEST(HpimMessages, TruncatedBodiesRejected) {
  HpimInterest i;
  i.source = kSource;
  i.group = kGroup;
  Bytes body = i.body();
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    ParseResult<HpimInterest> r =
        HpimInterest::try_parse(BytesView(body.data(), cut));
    ASSERT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.failure().reason, ParseReason::kTruncated) << "cut=" << cut;
  }
}

TEST(HpimMessages, SyncCountLieRejectedBeforeEntryWork) {
  HpimSync s;
  s.seq = 1;
  s.entries.push_back({kSource, kGroup, true});
  Bytes body = s.body();
  // Body layout: seq u32, more u8, count u16, entries. Promise more entries
  // than the octets carry: rejected as truncated without reading them.
  body[5] = 0;
  body[6] = 200;
  ParseResult<HpimSync> r = HpimSync::try_parse(body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().reason, ParseReason::kTruncated);
}

TEST(HpimMessages, SyncEntryBoundEnforced) {
  HpimSync s;
  s.seq = 1;
  s.entries.push_back({kSource, kGroup, true});
  Bytes body = s.body();
  body[5] = 0xff;  // count 0xffff >> bound::kMaxHpimSyncEntries
  body[6] = 0xff;
  ParseResult<HpimSync> r = HpimSync::try_parse(body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().reason, ParseReason::kBoundExceeded);
}

TEST(HpimMessages, TrailingGarbageAfterBodyRejected) {
  HpimAck a;
  a.seq = 5;
  Bytes body = a.body();
  body.push_back(0xaa);
  ParseResult<HpimAck> r = HpimAck::try_parse(body);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().reason, ParseReason::kOverlength);
}

TEST(HpimMessages, UnknownTypeRejectedAtHeader) {
  Bytes wire = serialize_hpim(static_cast<HpimType>(9), HpimHello{}.body(),
                              kSrc, kDst);
  ParseResult<HpimHeader> r = try_parse_hpim(wire, kSrc, kDst);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().reason, ParseReason::kBadType);
  EXPECT_EQ(r.failure().str(), "bad-type: unknown HPIM message type");
}

}  // namespace
}  // namespace mip6
