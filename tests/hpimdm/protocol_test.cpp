// HPIM-DM engine behavior on the Figure 1 world: interest replaces
// flood-and-prune (leave/rejoin react through acknowledged declarations, not
// timer cycles), control messages retransmit with backoff until acked,
// silent neighbors expire and interest is recomputed without them, and a
// crash keeps the hard state so a restart forwards again without a re-flood.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/figure1.hpp"
#include "core/traffic.hpp"
#include "fault/chaos.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

WorldConfig hpim_world() {
  WorldConfig config;
  config.dense_engine = DenseEngineKind::kHpimDm;
  return config;
}

/// Figure 1 under HPIM-DM with a CBR sender (100 ms) started at t=1s and a
/// receiver app on each host; subscriptions are up to the test.
struct Harness {
  Figure1 f;
  std::unique_ptr<GroupReceiverApp> app1;
  std::unique_ptr<GroupReceiverApp> app2;
  std::unique_ptr<GroupReceiverApp> app3;
  std::unique_ptr<CbrSource> source;

  explicit Harness(std::uint64_t seed, WorldConfig config = hpim_world())
      : f(build_figure1(seed, config)) {
    app1 = std::make_unique<GroupReceiverApp>(*f.recv1->stack, kPort);
    app2 = std::make_unique<GroupReceiverApp>(*f.recv2->stack, kPort);
    app3 = std::make_unique<GroupReceiverApp>(*f.recv3->stack, kPort);
    Address group = Figure1::group();
    auto* sender = f.sender;
    source = std::make_unique<CbrSource>(
        f.world->scheduler(),
        [sender, group](Bytes p) {
          sender->service->send_multicast(group, kPort, kPort, std::move(p));
        },
        Time::ms(100), 64);
    source->start(Time::sec(1));
  }

  std::uint64_t counter(const std::string& name) const {
    return f.world->net().counters().get(name);
  }
  void at(Time t, std::function<void()> fn) {
    f.world->scheduler().schedule_at(t, std::move(fn));
  }
};

TEST(HpimProtocol, DeliversToAllReceiversAndBuildsHardState) {
  Harness h(21);
  h.f.recv1->service->subscribe(Figure1::group());
  h.f.recv2->service->subscribe(Figure1::group());
  h.f.recv3->service->subscribe(Figure1::group());
  h.f.world->run_until(Time::sec(20));

  EXPECT_GT(h.app1->unique_received(), 150u);
  EXPECT_GT(h.app2->unique_received(), 150u);
  EXPECT_GT(h.app3->unique_received(), 150u);

  const Address s = h.f.sender->mn->home_address();
  const Address g = Figure1::group();
  for (NodeRuntime* r : {h.f.a, h.f.b, h.f.c, h.f.d, h.f.e}) {
    ASSERT_NE(r->hpim, nullptr);
    EXPECT_EQ(r->dense, r->hpim);
    EXPECT_TRUE(r->hpim->has_entry(s, g)) << r->node->name();
  }
  // RouterA is the first-hop router: no upstream neighbor.
  EXPECT_TRUE(h.f.a->hpim->rpf_neighbor_of(s, g).is_unspecified());
  EXPECT_FALSE(h.f.d->hpim->rpf_neighbor_of(s, g).is_unspecified());
  // Reliable control actually ran: interest declarations and acks flowed.
  EXPECT_GT(h.counter("hpimdm/tx/interest"), 0u);
  EXPECT_GT(h.counter("hpimdm/tx/ack"), 0u);
}

TEST(HpimProtocol, LeaveStopsStreamAndRejoinRestoresItQuickly) {
  Harness h(23);
  h.f.recv3->service->subscribe(Figure1::group());
  h.at(Time::sec(10),
       [&] { h.f.recv3->service->unsubscribe(Figure1::group()); });
  h.at(Time::sec(18),
       [&] { h.f.recv3->service->subscribe(Figure1::group()); });
  h.f.world->run_until(Time::sec(25));

  // Flowing before the leave, silent after the uninterest propagated (give
  // it one second), flowing again right after the rejoin — no PIM-DM
  // flood/prune/graft cycle in between.
  EXPECT_GT(h.app3->received_in(Time::sec(2), Time::sec(10)), 60u);
  EXPECT_EQ(h.app3->received_in(Time::sec(12), Time::sec(18)), 0u);
  EXPECT_GT(h.app3->received_in(Time::sec(19), Time::sec(25)), 40u);
  EXPECT_GT(h.counter("hpimdm/tx/interest"), 0u);
}

TEST(HpimProtocol, ControlLossRetransmitsWithBackoffUntilAcked) {
  Harness h(25);
  // Kill every frame on Link3 while Receiver3 joins below it: the interest
  // RouterD declares to its upstream is lost and must be retransmitted with
  // backoff until the link heals and the cumulative ack arrives.
  FaultPlan plan;
  plan.degrade(Time::sec(5), "Link3", LinkImpairment{1.0, 0.0, Time::zero()})
      .restore(Time::sec(8), "Link3");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();
  h.at(Time::sec(6), [&] { h.f.recv3->service->subscribe(Figure1::group()); });
  h.f.world->run_until(Time::sec(15));

  // Several backoff rounds fit in the 2 s outage (rto 200ms doubling).
  EXPECT_GE(h.counter("hpimdm/retx"), 2u);
  // The declaration eventually got through: the stream reached Receiver3.
  EXPECT_GT(h.app3->received_in(Time::sec(9), Time::sec(15)), 40u);
}

TEST(HpimProtocol, CrashKeepsHardStateAndRestartAvoidsReflood) {
  Harness h(27);
  h.f.recv3->service->subscribe(Figure1::group());
  FaultPlan plan;
  plan.router_crash(Time::sec(20), "RouterD")
      .router_restart(Time::sec(22), "RouterD");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();

  const Address s = h.f.sender->mn->home_address();
  std::uint64_t sg_created_before = 0;
  h.at(Time::sec(19), [&] { sg_created_before = h.counter("hpimdm/sg-created"); });

  h.f.world->run_until(Time::sec(21));
  // Crashed, but the (S,G) entry survived: that is the hard state (PIM-DM
  // wipes it — see Chaos.RouterCrashWipesStateAndRestartReconverges).
  EXPECT_FALSE(h.f.d->node->up());
  EXPECT_GT(h.f.d->hpim->entry_count(), 0u);
  EXPECT_TRUE(h.f.d->hpim->has_entry(s, Figure1::group()));

  h.f.world->run_until(Time::sec(40));
  EXPECT_TRUE(chaos.all_audits_ok());
  // No re-flood happened anywhere: not a single new (S,G) entry was created
  // by the crash/restart cycle.
  EXPECT_EQ(h.counter("hpimdm/sg-created"), sg_created_before);
  // The rebooted generation id forced the neighbors to re-sync reliably.
  EXPECT_GT(h.counter("hpimdm/neighbor-resync"), 0u);
  // Forwarding resumed on the first datagrams after restart — well inside
  // the MLD query window PIM-DM needs to relearn the leaf.
  auto recs = chaos.recoveries(*h.app3);
  ASSERT_EQ(recs.size(), 1u);
  ASSERT_TRUE(recs[0].recovered_at.has_value());
  EXPECT_LT(*recs[0].recovered_at, Time::sec(23));
  EXPECT_GT(h.app3->received_in(Time::sec(23), Time::sec(40)), 150u);
}

TEST(HpimProtocol, SilentNeighborExpiresAndRecoversThroughSync) {
  WorldConfig config = hpim_world();
  config.hpim.hello_period = Time::sec(1);
  config.hpim.hello_holdtime_s = 4;
  Harness h(29, config);
  h.f.recv3->service->subscribe(Figure1::group());
  FaultPlan plan;
  plan.link_down(Time::sec(20), "Link3").link_up(Time::sec(28), "Link3");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();
  h.f.world->run_until(Time::sec(40));

  // The outage outlived the holdtime: the Link3 routers declared each other
  // failed and dropped the dead channels...
  EXPECT_GE(h.counter("hpimdm/neighbor-expired"), 2u);
  EXPECT_EQ(h.app3->received_in(Time::sec(21), Time::sec(28)), 0u);
  // ...and the reliable sync on neighbor re-up restored the tree without
  // waiting for a new flood cycle.
  EXPECT_GT(h.counter("hpimdm/tx/sync"), 0u);
  EXPECT_GT(h.app3->received_in(Time::sec(31), Time::sec(40)), 50u);
}

TEST(HpimProtocol, SyncStormIsDampedToOnePerInterval) {
  WorldConfig config = hpim_world();
  config.hpim.sync_min_interval = Time::sec(5);
  Harness h(31, config);
  h.f.recv3->service->subscribe(Figure1::group());
  // Two reboot-driven resync triggers inside one damping interval: the
  // second must coalesce into the deferred transmission, not send again.
  FaultPlan plan;
  plan.router_crash(Time::sec(20), "RouterD")
      .router_restart(Time::sec(21), "RouterD")
      .router_crash(Time::sec(23), "RouterD")
      .router_restart(Time::sec(24), "RouterD");
  ChaosEngine chaos(*h.f.world, plan);
  chaos.arm();
  h.f.world->run_until(Time::sec(35));

  EXPECT_GE(h.counter("hpimdm/neighbor-resync"), 2u);
  EXPECT_GT(h.counter("hpimdm/sync-damped"), 0u);
  // Damping must not cost correctness: the stream is back at the end.
  EXPECT_GT(h.app3->received_in(Time::sec(30), Time::sec(35)), 40u);
}

}  // namespace
}  // namespace mip6
