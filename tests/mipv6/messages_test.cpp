#include "mipv6/messages.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(Mipv6Messages, BindingUpdateRoundTrip) {
  BindingUpdateOption bu;
  bu.ack_requested = true;
  bu.home_registration = true;
  bu.sequence = 4711;
  bu.lifetime_s = 256;
  DestOption opt = bu.encode();
  EXPECT_EQ(opt.type, opt::kBindingUpdate);
  BindingUpdateOption back = BindingUpdateOption::decode(opt);
  EXPECT_TRUE(back.ack_requested);
  EXPECT_TRUE(back.home_registration);
  EXPECT_EQ(back.sequence, 4711);
  EXPECT_EQ(back.lifetime_s, 256u);
  EXPECT_TRUE(back.sub_options.empty());
}

TEST(Mipv6Messages, BindingUpdateFlagsIndependent) {
  BindingUpdateOption bu;
  bu.ack_requested = false;
  bu.home_registration = true;
  BindingUpdateOption back = BindingUpdateOption::decode(bu.encode());
  EXPECT_FALSE(back.ack_requested);
  EXPECT_TRUE(back.home_registration);
}

TEST(Mipv6Messages, BindingUpdateWithSubOptions) {
  BindingUpdateOption bu;
  bu.sub_options.push_back(BuSubOption{subopt::kUniqueIdentifier, {1, 2}});
  MulticastGroupListSubOption list;
  list.groups.push_back(Address::parse("ff1e::1"));
  list.groups.push_back(Address::parse("ff1e::2"));
  bu.sub_options.push_back(list.encode());

  BindingUpdateOption back = BindingUpdateOption::decode(bu.encode());
  ASSERT_EQ(back.sub_options.size(), 2u);
  EXPECT_NE(back.find_sub_option(subopt::kUniqueIdentifier), nullptr);
  const BuSubOption* sub = back.find_sub_option(subopt::kMulticastGroupList);
  ASSERT_NE(sub, nullptr);
  MulticastGroupListSubOption got = MulticastGroupListSubOption::decode(*sub);
  ASSERT_EQ(got.groups.size(), 2u);
  EXPECT_EQ(got.groups[1], Address::parse("ff1e::2"));
}

TEST(Mipv6Messages, GroupListLenIsSixteenTimesN) {
  // Figure 5 of the paper: Sub-Option Len = 16 * N.
  for (std::size_t n = 0; n <= 8; ++n) {
    MulticastGroupListSubOption list;
    for (std::size_t i = 0; i < n; ++i) {
      list.groups.push_back(
          Address::from_prefix_iid(Address::parse("ff1e::"), i + 1));
    }
    BuSubOption sub = list.encode();
    EXPECT_EQ(sub.type, subopt::kMulticastGroupList);
    EXPECT_EQ(sub.data.size(), 16 * n);
    MulticastGroupListSubOption back =
        MulticastGroupListSubOption::decode(sub);
    EXPECT_EQ(back.groups.size(), n);
  }
}

TEST(Mipv6Messages, GroupListCapsAtFifteenGroups) {
  MulticastGroupListSubOption list;
  for (int i = 0; i < 16; ++i) {
    list.groups.push_back(
        Address::from_prefix_iid(Address::parse("ff1e::"), i + 1));
  }
  EXPECT_THROW(list.encode(), LogicError);
  list.groups.pop_back();
  EXPECT_NO_THROW(list.encode());
}

TEST(Mipv6Messages, GroupListRejectsBadLength) {
  BuSubOption sub{subopt::kMulticastGroupList, Bytes(17)};
  EXPECT_THROW(MulticastGroupListSubOption::decode(sub), ParseError);
}

TEST(Mipv6Messages, GroupListRejectsUnicastEntries) {
  Address unicast = Address::parse("2001:db8::1");
  BuSubOption sub{subopt::kMulticastGroupList,
                  Bytes(unicast.bytes().begin(), unicast.bytes().end())};
  EXPECT_THROW(MulticastGroupListSubOption::decode(sub), ParseError);
}

TEST(Mipv6Messages, BindingAckRoundTrip) {
  BindingAckOption ack;
  ack.status = 0;
  ack.sequence = 99;
  ack.lifetime_s = 256;
  ack.refresh_s = 128;
  BindingAckOption back = BindingAckOption::decode(ack.encode());
  EXPECT_EQ(back.sequence, 99);
  EXPECT_EQ(back.lifetime_s, 256u);
  EXPECT_EQ(back.refresh_s, 128u);
}

TEST(Mipv6Messages, BindingAckRejectsTrailing) {
  DestOption opt = BindingAckOption{}.encode();
  opt.data.push_back(0);
  EXPECT_THROW(BindingAckOption::decode(opt), ParseError);
}

TEST(Mipv6Messages, HomeAddressRoundTrip) {
  HomeAddressOption h;
  h.home_address = Address::parse("2001:db8:4::99");
  DestOption opt = h.encode();
  EXPECT_EQ(opt.type, opt::kHomeAddress);
  EXPECT_EQ(opt.data.size(), 16u);
  EXPECT_EQ(HomeAddressOption::decode(opt).home_address, h.home_address);
}

TEST(Mipv6Messages, DecodeRejectsWrongOptionType) {
  DestOption wrong{opt::kBindingAck, Bytes(11)};
  EXPECT_THROW(BindingUpdateOption::decode(wrong), ParseError);
  DestOption wrong2{opt::kBindingUpdate, Bytes(8)};
  EXPECT_THROW(BindingAckOption::decode(wrong2), ParseError);
  EXPECT_THROW(HomeAddressOption::decode(wrong2), ParseError);
}

TEST(Mipv6Messages, TruncatedBindingUpdateRejected) {
  DestOption opt = BindingUpdateOption{}.encode();
  opt.data.resize(3);
  EXPECT_THROW(BindingUpdateOption::decode(opt), ParseError);
}

}  // namespace
}  // namespace mip6
