// Home-agent redundancy: binding replication between peer agents on the
// home link, VRRP-style address takeover when the primary dies, continued
// multicast representation through the backup, and failback.
#include "mipv6/ha_redundancy.hpp"

#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "core/world.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::50");
constexpr std::uint16_t kPort = 9000;

/// home link HL with two HAs; both also on transit TL; foreign router FR
/// serves foreign link FL. A multicast source and a peer host sit on HL.
struct Redundant {
  World world;
  Link& hl;
  Link& tl;
  Link& fl;
  NodeRuntime& ha1;
  NodeRuntime& ha2;
  NodeRuntime& fr;
  NodeRuntime& mn;
  NodeRuntime& src;
  std::unique_ptr<HaRedundancy> red1;
  std::unique_ptr<HaRedundancy> red2;

  Redundant()
      : world(1), hl(world.add_link("HL")), tl(world.add_link("TL")),
        fl(world.add_link("FL")),
        ha1(world.add_router("HA1", {&hl, &tl})),
        ha2(world.add_router("HA2", {&hl, &tl})),
        fr(world.add_router("FR", {&tl, &fl})),
        mn(world.add_host("MN", hl,
                          {McastStrategy::kBidirTunnel,
                           HaRegistration::kGroupListBu})),
        src(world.add_host("SRC", hl)) {
    world.finalize();
    red1 = std::make_unique<HaRedundancy>(
        *ha1.stack, *ha1.ha, *ha1.udp, ha1.iface_on(hl),
        ha1.address_on(hl));
    red2 = std::make_unique<HaRedundancy>(
        *ha2.stack, *ha2.ha, *ha2.udp, ha2.iface_on(hl),
        ha2.address_on(hl));
    red1->add_peer(ha2.address_on(hl),
                   {ha2.address_on(hl), ha2.address_on(tl)});
    red2->add_peer(ha1.address_on(hl),
                   {ha1.address_on(hl), ha1.address_on(tl)});
  }
};

TEST(HaRedundancy, BindingsReplicateToPeer) {
  Redundant t;
  t.mn.service->subscribe(kGroup);
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(5));
  ASSERT_EQ(t.ha1.ha->cache().size(), 1u);   // primary holds the binding
  EXPECT_EQ(t.red2->replica_count(), 1u);    // backup holds the replica
  EXPECT_EQ(t.ha2.ha->cache().size(), 0u);   // but is not serving it
  EXPECT_FALSE(t.ha2.ha->represents(kGroup));
}

TEST(HaRedundancy, DeregistrationClearsReplica) {
  Redundant t;
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(5));
  ASSERT_EQ(t.red2->replica_count(), 1u);
  t.mn.mn->move_to(t.hl);  // return home: dereg BU
  t.world.run_until(Time::sec(10));
  EXPECT_EQ(t.red2->replica_count(), 0u);
}

TEST(HaRedundancy, BackupTakesOverAndMulticastResumes) {
  Redundant t;
  GroupReceiverApp app(*t.mn.stack, kPort);
  t.mn.service->subscribe(kGroup);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.src.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(10));
  ASSERT_GT(app.unique_received(), 50u);  // tunneled via HA1

  // HA1 dies.
  const Time death = Time::sec(10);
  const Address ha1_id = t.ha1.address_on(t.hl);
  for (const auto& iface : t.ha1.node->interfaces()) iface->detach();
  t.world.run_until(Time::sec(40));
  EXPECT_TRUE(t.red2->has_taken_over(ha1_id));
  EXPECT_EQ(t.ha2.ha->cache().size(), 1u);
  EXPECT_TRUE(t.ha2.ha->represents(kGroup));
  EXPECT_TRUE(t.ha2.pim->is_local_receiver(kGroup));

  // Multicast resumed through HA2 within the failure-detection window plus
  // a little signalling (heartbeat 2 s * threshold 3 = 6 s).
  auto resumed = app.first_rx_at_or_after(death + Time::sec(7));
  ASSERT_TRUE(resumed.has_value());
  EXPECT_GT(app.received_in(Time::sec(20), Time::sec(40)), 150u);

  // BU refreshes addressed to the dead HA1 are now answered by HA2: run
  // far beyond the binding lifetime; the binding must stay alive.
  t.world.run_until(Time::sec(10) + Time::sec(300));
  EXPECT_EQ(t.ha2.ha->cache().size(), 1u);
  EXPECT_GT(t.world.net().counters().get("ha/binding-adopted"), 0u);
}

TEST(HaRedundancy, UnicastInterceptServedByBackup) {
  Redundant t;
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(5));
  const Address ha1_id = t.ha1.address_on(t.hl);
  for (const auto& iface : t.ha1.node->interfaces()) iface->detach();
  t.world.run_until(Time::sec(20));
  ASSERT_TRUE(t.red2->has_taken_over(ha1_id));

  int delivered = 0;
  t.mn.stack->set_proto_handler(
      proto::kNoNext,
      [&](const ParsedDatagram& d, const Packet&, IfaceId) {
        if (d.hdr.dst == t.mn.mn->home_address()) ++delivered;
      });
  DatagramSpec spec;
  spec.src = t.src.stack->global_address(t.src.iface());
  spec.dst = t.mn.mn->home_address();
  spec.protocol = proto::kNoNext;
  t.src.stack->send(spec);
  t.world.run_until(Time::sec(21));
  EXPECT_EQ(delivered, 1);
}

TEST(HaRedundancy, FailbackReleasesAdoptedState) {
  Redundant t;
  t.mn.service->subscribe(kGroup);
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(5));

  // Simulate HA1 silence without killing it entirely: detach only its home
  // link interface (heartbeats stop reaching HA2).
  const Address ha1_id = t.ha1.address_on(t.hl);
  Interface& ha1_home = t.ha1.node->iface_by_id(t.ha1.iface_on(t.hl));
  ha1_home.detach();
  t.world.run_until(Time::sec(20));
  ASSERT_TRUE(t.red2->has_taken_over(ha1_id));
  ASSERT_EQ(t.ha2.ha->cache().size(), 1u);

  // HA1 comes back: heartbeats resume, HA2 releases everything.
  ha1_home.attach(t.hl);
  t.world.run_until(Time::sec(40));
  EXPECT_FALSE(t.red2->has_taken_over(ha1_id));
  EXPECT_EQ(t.ha2.ha->cache().size(), 0u);
  EXPECT_FALSE(t.ha2.ha->represents(kGroup));
  EXPECT_FALSE(t.ha2.stack->owns_address(ha1_id));
  EXPECT_GT(t.world.net().counters().get("hasync/failback"), 0u);
}

}  // namespace
}  // namespace mip6
