// Mobile IPv6 behaviour: binding lifecycle, home-agent interception and
// tunneling, BU retransmission, returning home, binding expiry — and the
// paper's two multicast registration mechanisms at the HA.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/traffic.hpp"
#include "core/world.hpp"
#include "mipv6/binding_cache.hpp"
#include "mipv6/messages.hpp"
#include "sim/trace.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::9");
constexpr std::uint16_t kPort = 9000;

/// home -- HL -- HA-router -- TL -- FR-router -- FL (foreign)
struct Roam {
  World world;
  Link& hl;
  Link& tl;
  Link& fl;
  NodeRuntime& ha;
  NodeRuntime& fr;
  NodeRuntime& mn;
  NodeRuntime& peer;  // a static host on the home link

  explicit Roam(WorldConfig config = {})
      : world(1, config), hl(world.add_link("HL")), tl(world.add_link("TL")),
        fl(world.add_link("FL")), ha(world.add_router("HA", {&hl, &tl})),
        fr(world.add_router("FR", {&tl, &fl})),
        mn(world.add_host("MN", hl)), peer(world.add_host("Peer", hl)) {
    world.finalize();
  }
};

TEST(Mipv6, BindingEstablishedAfterMove) {
  Roam t;
  t.world.run_until(Time::sec(1));
  EXPECT_FALSE(t.mn.mn->away_from_home());
  EXPECT_EQ(t.ha.ha->cache().size(), 0u);

  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(3));
  EXPECT_TRUE(t.mn.mn->away_from_home());
  EXPECT_TRUE(t.mn.mn->binding_acked());
  const BindingCache::Entry* e =
      t.ha.ha->cache().find(t.mn.mn->home_address());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->care_of, t.mn.mn->care_of());
  EXPECT_TRUE(Prefix::parse("2001:db8:3::/64").contains(e->care_of));
}

TEST(Mipv6, CareOfAddressFormsAfterMovementDetectionDelay) {
  WorldConfig config;
  config.mipv6.movement_detection_delay = Time::sec(2);
  Roam t(config);
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(1));
  // Still detecting movement: stale source, no care-of address.
  EXPECT_FALSE(t.mn.mn->away_from_home());
  EXPECT_EQ(t.mn.mn->current_source(), t.mn.mn->home_address());
  t.world.run_until(Time::sec(3));
  EXPECT_TRUE(t.mn.mn->away_from_home());
  EXPECT_NE(t.mn.mn->current_source(), t.mn.mn->home_address());
}

TEST(Mipv6, InterceptedUnicastTunneledToCareOf) {
  Roam t;
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(2));

  // Peer sends to the MN's *home address*; the HA must intercept + tunnel.
  int delivered = 0;
  t.mn.stack->set_proto_handler(
      proto::kUdp, [&](const ParsedDatagram& d, const Packet&, IfaceId) {
        ++delivered;
        EXPECT_EQ(d.hdr.dst, t.mn.mn->home_address());
      });
  Address src = t.peer.stack->global_address(t.peer.iface());
  DatagramSpec spec;
  spec.src = src;
  spec.dst = t.mn.mn->home_address();
  spec.protocol = proto::kUdp;
  spec.payload = UdpDatagram{1, 2, Bytes{9}}.serialize(src, spec.dst);
  t.peer.stack->send(spec);
  t.world.run_until(Time::sec(3));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(t.world.net().counters().get("ha/encap-unicast"), 1u);
  EXPECT_EQ(t.world.net().counters().get("mn/decap"), 1u);
}

TEST(Mipv6, TraceRecordsRegistrationAndTunneling) {
  Roam t;
  std::vector<TraceRecord> records;
  t.world.net().trace().set_sink(Trace::recorder(records));

  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(2));
  Address src = t.peer.stack->global_address(t.peer.iface());
  DatagramSpec spec;
  spec.src = src;
  spec.dst = t.mn.mn->home_address();
  spec.protocol = proto::kUdp;
  spec.payload = UdpDatagram{1, 2, Bytes{9}}.serialize(src, spec.dst);
  t.peer.stack->send(spec);
  t.world.run_until(Time::sec(3));

  auto find = [&](const char* event) {
    return std::find_if(records.begin(), records.end(),
                        [&](const TraceRecord& r) {
                          return r.component == "ha/HA" && r.event == event;
                        });
  };
  auto bu = find("rx-bu");
  ASSERT_NE(bu, records.end());
  EXPECT_NE(bu->detail.find(t.mn.mn->home_address().str()),
            std::string::npos);
  auto intercept = find("intercept");
  ASSERT_NE(intercept, records.end());
  EXPECT_NE(intercept->detail.find(t.mn.mn->care_of().str()),
            std::string::npos);
}

TEST(Mipv6, BindingUpdateRetransmittedWhenAckLost) {
  Roam t;
  // Drop every Binding Ack (packets from HA to the MN carrying the option).
  int dropped = 0;
  t.fl.set_drop_fn([&](const Packet& pkt, const Interface& to) {
    if (&to.node() != t.mn.node) return false;
    try {
      ParsedDatagram d = parse_datagram(pkt.view());
      if (d.has_option(opt::kBindingAck)) {
        ++dropped;
        return true;
      }
    } catch (const ParseError&) {
    }
    return false;
  });
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(10));
  EXPECT_FALSE(t.mn.mn->binding_acked());
  EXPECT_GE(t.world.net().counters().get("mn/bu-retransmit"), 2u);
  EXPECT_GE(dropped, 2);
  // The binding itself exists at the HA (BUs got through).
  EXPECT_EQ(t.ha.ha->cache().size(), 1u);
}

TEST(Mipv6, BuRetransmissionBacksOffExponentiallyToCap) {
  WorldConfig config;
  config.mipv6.bu_retransmit_max = Time::sec(4);
  config.mipv6.bu_max_retransmits = 5;
  Roam t(config);
  // Record every BU reaching the HA across the transit link; drop every
  // Binding Ack so the retransmission machinery runs its whole budget.
  std::vector<Time> bu_times;
  std::vector<std::uint16_t> bu_sequences;
  t.tl.set_drop_fn([&](const Packet& pkt, const Interface& to) {
    if (&to.node() == t.ha.node) {
      try {
        ParsedDatagram d = parse_datagram(pkt.view());
        if (const DestOption* o = d.find_option(opt::kBindingUpdate)) {
          bu_times.push_back(t.world.now());
          bu_sequences.push_back(BindingUpdateOption::decode(*o).sequence);
        }
      } catch (const ParseError&) {
      }
    }
    return false;
  });
  t.fl.set_drop_fn([&](const Packet& pkt, const Interface& to) {
    if (&to.node() != t.mn.node) return false;
    try {
      return parse_datagram(pkt.view()).has_option(opt::kBindingAck);
    } catch (const ParseError&) {
      return false;
    }
  });

  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(40));
  EXPECT_FALSE(t.mn.mn->binding_acked());

  // Fresh BU + 5 retransmissions of the identical message (same sequence —
  // a retransmission is a resend, not a new registration).
  ASSERT_EQ(bu_times.size(), 6u);
  for (std::uint16_t seq : bu_sequences) EXPECT_EQ(seq, bu_sequences[0]);

  // Gaps double from the initial 1 s and clamp at the 4 s ceiling.
  const Time expected[] = {Time::sec(1), Time::sec(2), Time::sec(4),
                           Time::sec(4), Time::sec(4)};
  for (std::size_t i = 0; i + 1 < bu_times.size(); ++i) {
    EXPECT_EQ(bu_times[i + 1] - bu_times[i], expected[i]) << "gap " << i;
  }
  EXPECT_EQ(t.world.net().counters().get("mn/bu-retransmit"), 5u);
  EXPECT_EQ(t.world.net().counters().get("mn/bu-backoff-step"), 5u);
  // Budget exhausted: no further BUs until the next refresh cycle.
  std::size_t settled = bu_times.size();
  t.world.run_until(Time::sec(60));
  EXPECT_EQ(bu_times.size(), settled);
}

TEST(Mipv6, BindingRefreshKeepsCacheAlive) {
  Roam t;  // lifetime 256 s, refresh 128 s
  t.mn.mn->move_to(t.fl);
  // Far beyond the lifetime: periodic refreshes must keep it bound.
  t.world.run_until(Time::sec(800));
  EXPECT_EQ(t.ha.ha->cache().size(), 1u);
  EXPECT_EQ(t.world.net().counters().get("ha/binding-expired"), 0u);
  EXPECT_GE(t.world.net().counters().get("mn/tx/bu"), 3u);
}

TEST(Mipv6, BindingExpiresWhenMnFallsSilent) {
  Roam t;
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(2));
  ASSERT_EQ(t.ha.ha->cache().size(), 1u);

  // MN drops off the network entirely (no deregistration).
  t.world.net().node_by_name("MN").iface(0).detach();
  t.world.run_until(Time::sec(2) + Time::sec(257));
  EXPECT_EQ(t.ha.ha->cache().size(), 0u);
  EXPECT_EQ(t.world.net().counters().get("ha/binding-expired"), 1u);
}

TEST(Mipv6, ReturningHomeDeregisters) {
  Roam t;
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(2));
  ASSERT_EQ(t.ha.ha->cache().size(), 1u);

  t.mn.mn->move_to(t.hl);
  t.world.run_until(Time::sec(4));
  EXPECT_FALSE(t.mn.mn->away_from_home());
  EXPECT_EQ(t.ha.ha->cache().size(), 0u);
  // Packets to the home address now reach the MN natively.
  int delivered = 0;
  t.mn.stack->set_proto_handler(
      proto::kUdp,
      [&](const ParsedDatagram&, const Packet&, IfaceId) { ++delivered; });
  Address src = t.peer.stack->global_address(t.peer.iface());
  DatagramSpec spec;
  spec.src = src;
  spec.dst = t.mn.mn->home_address();
  spec.protocol = proto::kUdp;
  spec.payload = UdpDatagram{1, 2, Bytes{}}.serialize(src, spec.dst);
  t.peer.stack->send(spec);
  t.world.run_until(Time::sec(5));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(t.world.net().counters().get("ha/encap-unicast"), 0u);
}

TEST(Mipv6, GroupListBuRegistersMembershipAtHa) {
  Roam t;
  t.mn.service->set_strategy(
      {McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  t.mn.service->subscribe(kGroup);
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(2));
  EXPECT_TRUE(t.ha.ha->represents(kGroup));
  EXPECT_TRUE(t.ha.pim->is_local_receiver(kGroup));
  EXPECT_GE(t.world.net().counters().get("ha/rx/bu-group-list"), 1u);

  // Unsubscribing (next BU with an empty group list) releases the
  // registration.
  t.mn.service->unsubscribe(kGroup);
  t.world.run_until(Time::sec(3));
  EXPECT_FALSE(t.ha.ha->represents(kGroup));
  EXPECT_FALSE(t.ha.pim->is_local_receiver(kGroup));
}

TEST(Mipv6, TunneledMldReportsRegisterAndExpire) {
  Roam t;
  t.mn.mn->subscribe(kGroup);
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(2));
  ASSERT_TRUE(t.mn.mn->away_from_home());

  // Tunnel-as-interface variant: periodic Reports through the tunnel.
  t.mn.mn->start_tunneled_reports(kGroup, Time::sec(50));
  t.world.run_until(Time::sec(4));
  EXPECT_TRUE(t.ha.ha->represents(kGroup));
  EXPECT_GE(t.world.net().counters().get("ha/rx/tunneled-mld-report"), 1u);

  // Stop refreshing: the HA listener state expires after its 260 s
  // lifetime (the paper's T_MLI default).
  t.mn.mn->stop_tunneled_reports(kGroup);
  t.world.run_until(Time::sec(4) + Time::sec(261));
  EXPECT_FALSE(t.ha.ha->represents(kGroup));
  EXPECT_GE(t.world.net().counters().get("ha/tunnel-membership-expired"), 1u);
}

TEST(Mipv6, BindingExpiryReleasesGroupRepresentation) {
  Roam t;
  t.mn.mn->subscribe(kGroup);
  t.mn.mn->set_group_list_in_bu(true);
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(2));
  ASSERT_TRUE(t.ha.ha->represents(kGroup));

  t.world.net().node_by_name("MN").iface(0).detach();
  t.world.run_until(Time::sec(2) + Time::sec(257));
  // The paper: missing extended BUs let the HA "give up the representation
  // of the host as member of its multicast group".
  EXPECT_FALSE(t.ha.ha->represents(kGroup));
}

TEST(Mipv6, ReverseTunnelDeliversMulticastFromHomeLink) {
  Roam t;
  t.peer.mld_host->join(t.peer.iface(), kGroup);
  GroupReceiverApp app(*t.peer.stack, kPort);
  t.mn.mn->move_to(t.fl);
  t.world.run_until(Time::sec(2));

  // MN sends group traffic through the reverse tunnel; the peer on the
  // home link must receive it with the *home address* as source.
  DatagramSpec inner;
  inner.src = t.mn.mn->home_address();
  inner.dst = kGroup;
  inner.protocol = proto::kUdp;
  CbrPayload p;
  p.seq = 1;
  p.sent_at = t.world.now();
  inner.payload =
      UdpDatagram{kPort, kPort, p.encode(32)}.serialize(inner.src, inner.dst);
  t.mn.mn->tunnel_to_ha(build_datagram(inner));
  t.world.run_until(Time::sec(3));
  EXPECT_EQ(app.unique_received(), 1u);
  EXPECT_EQ(t.world.net().counters().get("ha/decap-multicast"), 1u);
}

TEST(BindingCacheUnit, UpdateRefreshExpire) {
  Scheduler sched;
  BindingCache cache(sched);
  std::vector<Address> expired;
  cache.set_expiry_callback(
      [&](const BindingCache::Entry& e) { expired.push_back(e.home); });

  Address home = Address::parse("2001:db8:1::99");
  Address coa1 = Address::parse("2001:db8:3::99");
  Address coa2 = Address::parse("2001:db8:4::99");
  cache.update(home, coa1, 1, Time::sec(10));
  EXPECT_EQ(cache.find(home)->care_of, coa1);

  sched.run_until(Time::sec(5));
  cache.update(home, coa2, 2, Time::sec(10));  // refresh with new CoA
  sched.run_until(Time::sec(12));              // old expiry must not fire
  ASSERT_NE(cache.find(home), nullptr);
  EXPECT_EQ(cache.find(home)->care_of, coa2);

  sched.run_until(Time::sec(20));
  EXPECT_EQ(cache.find(home), nullptr);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], home);
}

TEST(BindingCacheUnit, RemoveCancelsExpiry) {
  Scheduler sched;
  BindingCache cache(sched);
  int expirations = 0;
  cache.set_expiry_callback(
      [&](const BindingCache::Entry&) { ++expirations; });
  Address home = Address::parse("2001:db8:1::99");
  cache.update(home, Address::parse("2001:db8:3::99"), 1, Time::sec(10));
  cache.remove(home);
  sched.run_until(Time::sec(20));
  EXPECT_EQ(expirations, 0);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace mip6
