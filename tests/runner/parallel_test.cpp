#include "runner/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/figure1.hpp"
#include "core/traffic.hpp"

namespace mip6 {
namespace {

TEST(ParallelRunner, AggregatesAllReplications) {
  ReplicationOptions opts;
  opts.replications = 16;
  opts.threads = 4;
  auto result = run_replications(opts, [](std::uint64_t seed) {
    ReplicationResult r;
    r["seed_low_bit"] = static_cast<double>(seed & 1);
    r["constant"] = 7.0;
    return r;
  });
  EXPECT_EQ(result.at("constant").count(), 16u);
  EXPECT_DOUBLE_EQ(result.at("constant").mean(), 7.0);
}

TEST(ParallelRunner, SeedsAreDistinctAndDeterministic) {
  std::mutex m;
  std::set<std::uint64_t> seeds1, seeds2;
  ReplicationOptions opts;
  opts.replications = 8;
  opts.base_seed = 99;
  run_replications(opts, [&](std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(m);
    seeds1.insert(seed);
    return ReplicationResult{};
  });
  run_replications(opts, [&](std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(m);
    seeds2.insert(seed);
    return ReplicationResult{};
  });
  EXPECT_EQ(seeds1.size(), 8u);  // all distinct
  EXPECT_EQ(seeds1, seeds2);     // same base seed -> same seeds
}

TEST(ParallelRunner, ExceptionPropagates) {
  ReplicationOptions opts;
  opts.replications = 8;
  opts.threads = 2;
  EXPECT_THROW(run_replications(opts,
                                [](std::uint64_t seed) -> ReplicationResult {
                                  if (seed % 2 == 0) {
                                    throw std::runtime_error("boom");
                                  }
                                  return {};
                                }),
               std::runtime_error);
}

TEST(ParallelRunner, FailFastStopsRemainingReplications) {
  // With one worker the schedule is deterministic: the third replication
  // throws, so exactly three bodies run and the original message survives.
  ReplicationOptions opts;
  opts.replications = 8;
  opts.threads = 1;
  int invocations = 0;
  try {
    run_replications(opts, [&](std::uint64_t) -> ReplicationResult {
      if (++invocations == 3) throw std::runtime_error("kaput at #3");
      return {{"x", 1.0}};
    });
    FAIL() << "expected run_replications to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "kaput at #3");
  }
  EXPECT_EQ(invocations, 3);
}

TEST(ParallelRunner, SingleThreadWorks) {
  ReplicationOptions opts;
  opts.replications = 3;
  opts.threads = 1;
  auto result = run_replications(opts, [](std::uint64_t) {
    return ReplicationResult{{"x", 1.0}};
  });
  EXPECT_EQ(result.at("x").count(), 3u);
}

TEST(ParallelRunner, SimulationsAreReproducibleAcrossThreads) {
  // Whole-simulation determinism: the same seed must yield bit-identical
  // results regardless of which worker thread runs it.
  auto body = [](std::uint64_t seed) {
    Figure1 f = build_figure1(seed);
    Address group = Figure1::group();
    GroupReceiverApp app(*f.recv3->stack, Figure1::kDataPort);
    f.recv3->service->subscribe(group);
    CbrSource source(
        f.world->scheduler(),
        [&](Bytes p) {
          f.sender->service->send_multicast(group, Figure1::kDataPort,
                                            Figure1::kDataPort, std::move(p));
        },
        Time::ms(100), 64);
    source.start(Time::sec(1));
    f.world->run_until(Time::sec(20));
    ReplicationResult r;
    r["received"] = static_cast<double>(app.unique_received());
    r["events"] =
        static_cast<double>(f.world->scheduler().executed_events());
    return r;
  };
  ReplicationOptions opts;
  opts.replications = 4;
  opts.base_seed = 1234;

  opts.threads = 1;
  auto serial = run_replications(opts, body);
  opts.threads = 4;
  auto parallel = run_replications(opts, body);
  EXPECT_DOUBLE_EQ(serial.at("received").mean(),
                   parallel.at("received").mean());
  EXPECT_DOUBLE_EQ(serial.at("events").mean(), parallel.at("events").mean());
  EXPECT_DOUBLE_EQ(serial.at("events").stddev(),
                   parallel.at("events").stddev());
}

}  // namespace
}  // namespace mip6
