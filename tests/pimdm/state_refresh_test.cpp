// PIM-DM State Refresh extension (RFC 3973 semantics, off by default to
// match the paper's draft-03 baseline): refresh waves from the first-hop
// router keep prune state alive in place, eliminating the periodic
// re-flood; grafting through refreshed state must still work.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/traffic.hpp"
#include "core/world.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::5");
constexpr std::uint16_t kPort = 9000;

struct Chain {
  World world;
  Link& l0;
  Link& l1;
  Link& l2;
  Link& l3;
  NodeRuntime& r0;
  NodeRuntime& r1;
  NodeRuntime& r2;
  NodeRuntime& sender;
  NodeRuntime& host;
  McastMetrics metrics;
  std::unique_ptr<CbrSource> source;

  explicit Chain(bool state_refresh)
      : world(1,
              [&] {
                WorldConfig c;
                c.pim.state_refresh = state_refresh;
                return c;
              }()),
        l0(world.add_link("L0")), l1(world.add_link("L1")),
        l2(world.add_link("L2")), l3(world.add_link("L3")),
        r0(world.add_router("R0", {&l0, &l1})),
        r1(world.add_router("R1", {&l1, &l2})),
        r2(world.add_router("R2", {&l2, &l3})),
        sender(world.add_host("S", l0)), host(world.add_host("H", l3)),
        metrics(world.net(), world.routing(), kGroup, kPort) {
    world.finalize();
    source = std::make_unique<CbrSource>(
        world.scheduler(),
        [this](Bytes p) {
          sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
        },
        Time::ms(100), 64);
  }
};

TEST(StateRefresh, SuppressesPeriodicReflood) {
  Chain off(false), on(true);
  std::uint64_t off_l2_after_initial = 0, on_l2_after_initial = 0;
  for (Chain* t : {&off, &on}) {
    t->source->start(Time::ms(100));
    // Let the initial flood + T_PruneDel window pass (the paper's expected
    // flood: ~T_PruneDel * data rate onto each to-be-pruned link).
    t->world.run_until(Time::sec(60));
    (t == &off ? off_l2_after_initial : on_l2_after_initial) =
        t->metrics.data_tx_count_on(t->l2.id());
    t->world.run_until(Time::sec(700));  // several prune lifetimes
  }
  // Baseline draft-03: prunes expire and data re-floods periodically.
  EXPECT_GT(off.world.net().counters().get("pimdm/prune-expired"), 0u);
  std::uint64_t off_refloods =
      off.metrics.data_tx_count_on(off.l2.id()) - off_l2_after_initial;
  EXPECT_GT(off_refloods, 30u);

  // With state refresh: prunes are refreshed in place — after the initial
  // flood not a single datagram crosses the pruned L2 again.
  EXPECT_EQ(on.world.net().counters().get("pimdm/prune-expired"), 0u);
  EXPECT_GT(on.world.net().counters().get("pimdm/tx/state-refresh"), 5u);
  EXPECT_GT(on.world.net().counters().get("pimdm/prune-refreshed"), 5u);
  EXPECT_EQ(on.metrics.data_tx_count_on(on.l2.id()), on_l2_after_initial);
  // And the initial flood itself is bounded by the prune-delay window.
  EXPECT_LT(on_l2_after_initial, 50u);
}

TEST(StateRefresh, EntryKeptAliveByWavesNotOnlyData) {
  Chain t(true);
  t.source->start(Time::ms(100));
  t.world.run_until(Time::sec(30));
  // R1 pruned itself but its (S,G) entry must survive well past the 210 s
  // data timeout, because refresh waves keep arriving.
  const Address s = t.sender.mn->home_address();
  ASSERT_TRUE(t.r1.pim->has_entry(s, kGroup));
  t.world.run_until(Time::sec(500));
  EXPECT_TRUE(t.r1.pim->has_entry(s, kGroup));

  // When the source stops, origination stops at the first hop after its
  // data timeout, and downstream state drains one refresh lifetime later.
  t.source->stop();
  t.world.run_until(Time::sec(500) + Time::sec(250));
  EXPECT_FALSE(t.r0.pim->has_entry(s, kGroup));  // 210 s after last data
  t.world.run_until(Time::sec(500) + Time::sec(500));
  EXPECT_FALSE(t.r1.pim->has_entry(s, kGroup));  // 210 s after last wave
  EXPECT_FALSE(t.r2.pim->has_entry(s, kGroup));
}

TEST(StateRefresh, GraftStillWorksThroughRefreshedPrunes) {
  Chain t(true);
  GroupReceiverApp app(*t.host.stack, kPort);
  t.source->start(Time::ms(100));
  t.world.run_until(Time::sec(300));  // long-held (refreshed) prunes
  ASSERT_EQ(app.unique_received(), 0u);

  t.host.mld_host->join(t.host.iface(), kGroup);
  t.world.run_until(Time::sec(310));
  auto first = app.first_rx_at_or_after(Time::sec(300));
  ASSERT_TRUE(first.has_value());
  EXPECT_LT(*first, Time::sec(301));
  EXPECT_GT(app.unique_received(), 80u);
}

TEST(StateRefresh, MessageRoundTrip) {
  PimStateRefresh sr;
  sr.group = Address::parse("ff1e::1");
  sr.source = Address::parse("2001:db8:1::10");
  sr.originator = Address::parse("2001:db8:1::1");
  sr.metric_preference = 101;
  sr.metric = 2;
  sr.ttl = 7;
  sr.prune_indicator = true;
  sr.interval_s = 60;
  PimStateRefresh back = PimStateRefresh::parse(sr.body());
  EXPECT_EQ(back.group, sr.group);
  EXPECT_EQ(back.source, sr.source);
  EXPECT_EQ(back.originator, sr.originator);
  EXPECT_EQ(back.metric, 2u);
  EXPECT_EQ(back.ttl, 7);
  EXPECT_TRUE(back.prune_indicator);
  EXPECT_EQ(back.interval_s, 60);
}

TEST(StateRefresh, ParseRejectsTruncation) {
  PimStateRefresh sr;
  sr.group = Address::parse("ff1e::1");
  sr.source = Address::parse("2001:db8::1");
  sr.originator = Address::parse("2001:db8::2");
  Bytes body = sr.body();
  body.pop_back();
  EXPECT_THROW(PimStateRefresh::parse(body), ParseError);
}

}  // namespace
}  // namespace mip6
