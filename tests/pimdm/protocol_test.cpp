// PIM-DM protocol behaviour: flood-and-prune, graft (with retransmission),
// LAN prune delay with Join override, assert forwarder election, data
// timeout, and the local-receiver pinning used by PIM-capable home agents.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/traffic.hpp"
#include "core/world.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::5");
constexpr std::uint16_t kPort = 9000;

void send_data(NodeRuntime& host, const Address& group, std::uint32_t seq) {
  CbrPayload p;
  p.seq = seq;
  p.sent_at = host.stack->scheduler().now();
  host.service->send_multicast(group, kPort, kPort, p.encode(32));
}

/// sender -- L0 -- R0 -- L1 -- R1 -- L2 -- R2 -- L3 -- host
struct Chain {
  World world;
  Link& l0;
  Link& l1;
  Link& l2;
  Link& l3;
  NodeRuntime& r0;
  NodeRuntime& r1;
  NodeRuntime& r2;
  NodeRuntime& sender;
  NodeRuntime& host;
  McastMetrics metrics;

  explicit Chain(WorldConfig config = {})
      : world(1, config), l0(world.add_link("L0")), l1(world.add_link("L1")),
        l2(world.add_link("L2")), l3(world.add_link("L3")),
        r0(world.add_router("R0", {&l0, &l1})),
        r1(world.add_router("R1", {&l1, &l2})),
        r2(world.add_router("R2", {&l2, &l3})),
        sender(world.add_host("S", l0)), host(world.add_host("H", l3)),
        metrics(world.net(), world.routing(), kGroup, kPort) {
    world.finalize();
  }
};

TEST(PimDm, FloodThenPruneBackToSource) {
  Chain t;
  // No members anywhere: data is flooded, then pruned back.
  std::uint32_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    t.world.scheduler().schedule_at(Time::ms(100 * (i + 1)),
                                    [&t, &seq] { send_data(t.sender, kGroup, seq++); });
  }
  t.world.run_until(Time::sec(2));
  // Early packets flooded through all transit links.
  EXPECT_GT(t.metrics.data_tx_count_on(t.l1.id()), 0u);
  EXPECT_GT(t.metrics.data_tx_count_on(t.l2.id()), 0u);
  // L3 is a stub with no members and no downstream PIM routers: dense mode
  // never floods onto it.
  EXPECT_EQ(t.metrics.data_tx_count_on(t.l3.id()), 0u);

  t.world.run_until(Time::sec(10));
  std::uint64_t l1_after_prune = t.metrics.data_tx_count_on(t.l1.id());
  std::uint64_t l2_after_prune = t.metrics.data_tx_count_on(t.l2.id());
  EXPECT_GT(t.world.net().counters().get("pimdm/tx/prune"), 0u);
  EXPECT_GT(t.world.net().counters().get("pimdm/iface-pruned"), 0u);

  // Keep sending: no further growth on pruned links.
  t.world.run_until(Time::sec(11));
  EXPECT_EQ(t.metrics.data_tx_count_on(t.l1.id()), l1_after_prune);
  EXPECT_EQ(t.metrics.data_tx_count_on(t.l2.id()), l2_after_prune);
}

TEST(PimDm, MemberJoinGraftsCascade) {
  Chain t;
  GroupReceiverApp app(*t.host.stack, kPort);
  CbrSource source(
      t.world.scheduler(),
      [&t](Bytes p) {
        t.sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 32);
  source.start(Time::ms(100));

  // Let the tree get fully pruned first.
  t.world.run_until(Time::sec(20));
  ASSERT_EQ(app.unique_received(), 0u);

  // Host joins: R2 needs the MLD report, then grafts; R1 cascades.
  t.host.mld_host->join(t.host.iface(), kGroup);
  t.world.run_until(Time::sec(30));
  EXPECT_GT(app.unique_received(), 50u);
  EXPECT_GE(t.world.net().counters().get("pimdm/tx/graft"), 2u);
  EXPECT_GE(t.world.net().counters().get("pimdm/tx/graft-ack"), 2u);
  // Join delay after the graft is small: the first datagram arrives within
  // a CBR interval or two of the join.
  auto first = app.first_rx_at_or_after(Time::sec(20));
  ASSERT_TRUE(first.has_value());
  EXPECT_LT(*first, Time::sec(21));
}

TEST(PimDm, GraftRetransmittedUntilAcked) {
  Chain t;
  // Drop all Graft-Acks on L2 (towards R2).
  t.l2.set_drop_fn([&t](const Packet& pkt, const Interface& to) {
    if (&to.node() != t.r2.node) return false;
    try {
      ParsedDatagram d = parse_datagram(pkt.view());
      if (d.protocol != proto::kPim) return false;
      PimHeader h = parse_pim(d.payload, d.hdr.src, d.hdr.dst);
      return h.type == PimType::kGraftAck;
    } catch (const ParseError&) {
      return false;
    }
  });

  CbrSource source(
      t.world.scheduler(),
      [&t](Bytes p) {
        t.sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 32);
  source.start(Time::ms(100));
  t.world.run_until(Time::sec(20));  // prune settles
  t.host.mld_host->join(t.host.iface(), kGroup);
  t.world.run_until(Time::sec(40));
  // Graft keeps being retransmitted every 3 s while unacknowledged.
  EXPECT_GE(t.world.net().counters().get("pimdm/graft-retry"), 3u);
}

TEST(PimDm, DataTimeoutExpiresSilentSource) {
  Chain t;
  t.host.mld_host->join(t.host.iface(), kGroup);
  CbrSource source(
      t.world.scheduler(),
      [&t](Bytes p) {
        t.sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 32);
  source.start(Time::ms(100));
  t.world.run_until(Time::sec(10));
  source.stop();
  EXPECT_GT(t.r0.pim->entry_count(), 0u);
  EXPECT_GT(t.r2.pim->entry_count(), 0u);
  // The (S,G) state lives for the 210 s data timeout, then is deleted.
  t.world.run_until(Time::sec(10) + Time::sec(209));
  EXPECT_GT(t.r0.pim->entry_count(), 0u);
  t.world.run_until(Time::sec(10) + Time::sec(215));
  EXPECT_EQ(t.r0.pim->entry_count(), 0u);
  EXPECT_EQ(t.r2.pim->entry_count(), 0u);
  EXPECT_GT(t.world.net().counters().get("pimdm/sg-expired"), 0u);
}

/// Shared-LAN topology for prune-override and assert tests:
///
///   sender -- LA -- U -- LB -- D1 -- LC (no member)
///                        \--- D2 -- LD (member)
struct SharedLan {
  World world;
  Link& la;
  Link& lb;
  Link& lc;
  Link& ld;
  NodeRuntime& u;
  NodeRuntime& d1;
  NodeRuntime& d2;
  NodeRuntime& sender;
  NodeRuntime& member;
  McastMetrics metrics;

  SharedLan()
      : world(7), la(world.add_link("LA")), lb(world.add_link("LB")),
        lc(world.add_link("LC")), ld(world.add_link("LD")),
        u(world.add_router("U", {&la, &lb})),
        d1(world.add_router("D1", {&lb, &lc})),
        d2(world.add_router("D2", {&lb, &ld})),
        sender(world.add_host("S", la)), member(world.add_host("M", ld)),
        metrics(world.net(), world.routing(), kGroup, kPort) {
    world.finalize();
  }
};

TEST(PimDm, JoinOverridesPruneOnSharedLan) {
  SharedLan t;
  t.member.mld_host->join(t.member.iface(), kGroup);
  GroupReceiverApp app(*t.member.stack, kPort);
  CbrSource source(
      t.world.scheduler(),
      [&t](Bytes p) {
        t.sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 32);
  source.start(Time::ms(100));
  t.world.run_until(Time::sec(60));

  // D1 pruned (nothing downstream), D2 overrode with a Join.
  EXPECT_GT(t.world.net().counters().get("pimdm/tx/prune"), 0u);
  EXPECT_GT(t.world.net().counters().get("pimdm/tx/join-override"), 0u);
  EXPECT_GT(t.world.net().counters().get("pimdm/prune-overridden"), 0u);
  // The member kept receiving throughout (~10 datagrams/s).
  EXPECT_GT(app.unique_received(), 550u);
  // And the memberless stub LC never saw data.
  EXPECT_EQ(t.metrics.data_tx_count_on(t.lc.id()), 0u);
}

/// Parallel-path topology for asserts: two equal-cost routers bridge the
/// source LAN and the receiver LAN.
struct Diamond {
  World world;
  Link& top;
  Link& bottom;
  NodeRuntime& left;
  NodeRuntime& right;
  NodeRuntime& sender;
  NodeRuntime& member;

  Diamond()
      : world(3), top(world.add_link("Top")), bottom(world.add_link("Bottom")),
        left(world.add_router("Left", {&top, &bottom})),
        right(world.add_router("Right", {&top, &bottom})),
        sender(world.add_host("S", top)), member(world.add_host("M", bottom)) {
    world.finalize();
  }
};

TEST(PimDm, AssertElectsSingleForwarder) {
  Diamond t;
  t.member.mld_host->join(t.member.iface(), kGroup);
  GroupReceiverApp app(*t.member.stack, kPort);
  CbrSource source(
      t.world.scheduler(),
      [&t](Bytes p) {
        t.sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 32);
  source.start(Time::ms(500));
  t.world.run_until(Time::sec(30));

  // Both forwarded the first datagram -> duplicate -> assert -> one loser.
  EXPECT_GE(t.world.net().counters().get("pimdm/tx/assert"), 1u);
  EXPECT_EQ(t.world.net().counters().get("pimdm/assert-lost"), 1u);
  // Only the first datagram(s) are duplicated.
  EXPECT_LE(app.duplicates(), 3u);
  EXPECT_GT(app.unique_received(), 250u);

  // Exactly one of the two routers still forwards onto the bottom LAN.
  const Address s = t.sender.mn->home_address();
  int forwarders = 0;
  for (NodeRuntime* r : {&t.left, &t.right}) {
    auto oifs = r->pim->outgoing(s, kGroup);
    if (!oifs.empty()) ++forwarders;
  }
  EXPECT_EQ(forwarders, 1);
}

TEST(PimDm, LocalReceiverPreventsPrune) {
  Chain t;
  // R2 represents a mobile node (home-agent style): it must stay on the
  // tree despite having no downstream members.
  t.r2.pim->add_local_receiver(kGroup);
  CbrSource source(
      t.world.scheduler(),
      [&t](Bytes p) {
        t.sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 32);
  source.start(Time::ms(100));
  t.world.run_until(Time::sec(30));
  // Data still flows over L2 to reach R2 (not pruned away).
  std::uint64_t l2_count = t.metrics.data_tx_count_on(t.l2.id());
  EXPECT_GT(l2_count, 250u);

  // Dropping the local receiver prunes the branch.
  t.r2.pim->remove_local_receiver(kGroup);
  t.world.run_until(Time::sec(40));
  std::uint64_t l2_settled = t.metrics.data_tx_count_on(t.l2.id());
  t.world.run_until(Time::sec(50));
  EXPECT_LE(t.metrics.data_tx_count_on(t.l2.id()), l2_settled + 2);
}

TEST(PimDm, HelloNeighborDiscoveryAndExpiry) {
  Chain t;
  t.world.run_until(Time::sec(5));
  // R1 sees R0 and R2 (one neighbor on each transit LAN).
  EXPECT_EQ(t.r1.pim->neighbors(t.r1.iface_on(t.l1)).size(), 1u);
  EXPECT_EQ(t.r1.pim->neighbors(t.r1.iface_on(t.l2)).size(), 1u);

  // R2 leaves: its neighbor entry at R1 expires after the 105 s holdtime.
  t.r2.node->iface(0).detach();
  t.world.run_until(Time::sec(5) + Time::sec(106));
  EXPECT_TRUE(t.r1.pim->neighbors(t.r1.iface_on(t.l2)).empty());
  EXPECT_GT(t.world.net().counters().get("pimdm/neighbor-expired"), 0u);
}

TEST(PimDm, PruneExpiresAndRefloods) {
  Chain t;
  CbrSource source(
      t.world.scheduler(),
      [&t](Bytes p) {
        t.sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(200), 32);
  source.start(Time::ms(100));
  t.world.run_until(Time::sec(30));
  std::uint64_t pruned_l1 = t.metrics.data_tx_count_on(t.l1.id());
  ASSERT_GT(pruned_l1, 0u);

  // After the 210 s prune holdtime the prune state expires and dense mode
  // floods again (then re-prunes).
  t.world.run_until(Time::sec(230));
  EXPECT_GT(t.world.net().counters().get("pimdm/prune-expired"), 0u);
  EXPECT_GT(t.metrics.data_tx_count_on(t.l1.id()), pruned_l1);
}

}  // namespace
}  // namespace mip6
