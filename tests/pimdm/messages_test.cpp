#include "pimdm/messages.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mip6 {
namespace {

const Address kSrc = Address::parse("fe80::1");
const Address kDst = Address::parse("ff02::d");

TEST(PimMessages, HeaderRoundTripAndChecksum) {
  PimHello hello;
  hello.holdtime = 105;
  Bytes wire = serialize_pim(PimType::kHello, hello.body(), kSrc, kDst);
  PimHeader h = parse_pim(wire, kSrc, kDst);
  EXPECT_EQ(h.type, PimType::kHello);
  PimHello back = PimHello::parse(h.body);
  EXPECT_EQ(back.holdtime, 105);
}

TEST(PimMessages, ChecksumDetectsCorruption) {
  Bytes wire = serialize_pim(PimType::kHello, PimHello{105}.body(), kSrc, kDst);
  wire[wire.size() - 1] ^= 0x01;
  EXPECT_THROW(parse_pim(wire, kSrc, kDst), ParseError);
}

TEST(PimMessages, ChecksumCoversPseudoHeader) {
  Bytes wire = serialize_pim(PimType::kHello, PimHello{105}.body(), kSrc, kDst);
  EXPECT_THROW(parse_pim(wire, Address::parse("fe80::2"), kDst), ParseError);
}

TEST(PimMessages, RejectsWrongVersion) {
  Bytes wire = serialize_pim(PimType::kHello, PimHello{30}.body(), kSrc, kDst);
  // Flip the version nibble and fix the checksum by recomputation trick:
  // easier to just corrupt and expect either error.
  wire[0] = static_cast<std::uint8_t>((3 << 4) | (wire[0] & 0x0f));
  EXPECT_THROW(parse_pim(wire, kSrc, kDst), ParseError);
}

TEST(PimMessages, HelloWithUnknownOptionsStillParses) {
  BufferWriter w;
  w.u16(999);  // unknown option
  w.u16(4);
  w.u32(0xdeadbeef);
  w.u16(1);  // holdtime option
  w.u16(2);
  w.u16(77);
  PimHello h = PimHello::parse(w.bytes());
  EXPECT_EQ(h.holdtime, 77);
}

TEST(PimMessages, HelloWithoutHoldtimeRejected) {
  BufferWriter w;
  w.u16(999);
  w.u16(2);
  w.u16(0);
  EXPECT_THROW(PimHello::parse(w.bytes()), ParseError);
}

TEST(PimMessages, JoinPruneRoundTrip) {
  PimJoinPrune m;
  m.upstream_neighbor = Address::parse("2001:db8:3::5");
  m.holdtime = 210;
  PimJoinPrune::GroupEntry g;
  g.group = Address::parse("ff1e::1");
  g.joined_sources.push_back(Address::parse("2001:db8:1::10"));
  g.pruned_sources.push_back(Address::parse("2001:db8:1::11"));
  g.pruned_sources.push_back(Address::parse("2001:db8:1::12"));
  m.groups.push_back(g);

  PimJoinPrune back = PimJoinPrune::parse(m.body());
  EXPECT_EQ(back.upstream_neighbor, m.upstream_neighbor);
  EXPECT_EQ(back.holdtime, 210);
  ASSERT_EQ(back.groups.size(), 1u);
  EXPECT_EQ(back.groups[0].joined_sources.size(), 1u);
  EXPECT_EQ(back.groups[0].pruned_sources.size(), 2u);
  EXPECT_EQ(back.groups[0].pruned_sources[1],
            Address::parse("2001:db8:1::12"));
}

TEST(PimMessages, JoinPruneConvenienceConstructors) {
  Address up = Address::parse("fe80::9");
  Address s = Address::parse("2001:db8::1");
  Address g = Address::parse("ff1e::1");
  PimJoinPrune join = PimJoinPrune::join(up, s, g);
  ASSERT_EQ(join.groups.size(), 1u);
  EXPECT_EQ(join.groups[0].joined_sources.size(), 1u);
  EXPECT_TRUE(join.groups[0].pruned_sources.empty());

  PimJoinPrune prune = PimJoinPrune::prune(up, s, g, 210);
  EXPECT_EQ(prune.holdtime, 210);
  EXPECT_EQ(prune.groups[0].pruned_sources.size(), 1u);
}

TEST(PimMessages, MultiGroupJoinPrune) {
  PimJoinPrune m;
  m.upstream_neighbor = Address::parse("fe80::1");
  for (int i = 0; i < 5; ++i) {
    PimJoinPrune::GroupEntry g;
    g.group = Address::from_prefix_iid(Address::parse("ff1e::"), i + 1);
    g.joined_sources.push_back(
        Address::from_prefix_iid(Address::parse("2001:db8::"), i));
    m.groups.push_back(g);
  }
  PimJoinPrune back = PimJoinPrune::parse(m.body());
  EXPECT_EQ(back.groups.size(), 5u);
}

TEST(PimMessages, JoinPruneTruncationRejected) {
  PimJoinPrune m = PimJoinPrune::join(Address::parse("fe80::1"),
                                      Address::parse("2001:db8::1"),
                                      Address::parse("ff1e::1"));
  Bytes body = m.body();
  for (std::size_t len = 0; len < body.size(); ++len) {
    Bytes trunc(body.begin(), body.begin() + static_cast<long>(len));
    EXPECT_THROW(PimJoinPrune::parse(trunc), ParseError) << len;
  }
}

TEST(PimMessages, AssertRoundTrip) {
  PimAssert a;
  a.group = Address::parse("ff1e::1");
  a.source = Address::parse("2001:db8:1::10");
  a.metric_preference = 101;
  a.metric = 3;
  PimAssert back = PimAssert::parse(a.body());
  EXPECT_EQ(back.group, a.group);
  EXPECT_EQ(back.source, a.source);
  EXPECT_EQ(back.metric_preference, 101u);
  EXPECT_EQ(back.metric, 3u);
}

TEST(PimMessages, AssertRptBitMasked) {
  PimAssert a;
  a.group = Address::parse("ff1e::1");
  a.source = Address::parse("2001:db8::1");
  a.metric_preference = 0xffffffff;  // R bit would be set
  PimAssert back = PimAssert::parse(a.body());
  EXPECT_EQ(back.metric_preference, 0x7fffffffu);
}

TEST(PimMessages, EncodedAddressFamilyValidated) {
  BufferWriter w;
  w.u8(1);  // IPv4 family
  w.u8(0);
  w.zeros(16);
  BufferReader r(w.bytes());
  EXPECT_THROW(read_encoded_unicast(r), ParseError);
}

TEST(PimMessages, FuzzedBodiesNeverCrash) {
  Rng rng(4242);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.uniform_int(80));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      PimJoinPrune::parse(junk);
    } catch (const ParseError&) {
    }
    try {
      PimAssert::parse(junk);
    } catch (const ParseError&) {
    }
    try {
      PimHello::parse(junk);
    } catch (const ParseError&) {
    }
  }
}

}  // namespace
}  // namespace mip6
