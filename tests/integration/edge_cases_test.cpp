// Edge cases across modules: API contracts, idempotency, introspection
// errors, and protocol corners not covered by the scenario suites.
#include <gtest/gtest.h>

#include "core/traffic.hpp"
#include "core/world.hpp"
#include "mipv6/ha_redundancy.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::e0");
constexpr std::uint16_t kPort = 9000;

TEST(EdgeCases, PimIntrospectionThrowsOnMissingEntry) {
  World world(1);
  Link& lan = world.add_link("lan");
  NodeRuntime& r = world.add_router("R", {&lan});
  world.add_host("H", lan);
  world.finalize();
  Address s = Address::parse("2001:db8:9::1");
  EXPECT_FALSE(r.pim->has_entry(s, kGroup));
  EXPECT_TRUE(r.pim->outgoing(s, kGroup).empty());
  EXPECT_THROW(r.pim->incoming(s, kGroup), LogicError);
  EXPECT_THROW(r.pim->downstream_state(s, kGroup, 0), LogicError);
}

TEST(EdgeCases, LocalReceiverRefCounting) {
  World world(1);
  Link& lan = world.add_link("lan");
  NodeRuntime& r = world.add_router("R", {&lan});
  world.finalize();
  r.pim->add_local_receiver(kGroup);
  r.pim->add_local_receiver(kGroup);
  r.pim->remove_local_receiver(kGroup);
  EXPECT_TRUE(r.pim->is_local_receiver(kGroup));  // one ref left
  r.pim->remove_local_receiver(kGroup);
  EXPECT_FALSE(r.pim->is_local_receiver(kGroup));
  r.pim->remove_local_receiver(kGroup);  // extra remove is harmless
  EXPECT_FALSE(r.pim->is_local_receiver(kGroup));
}

TEST(EdgeCases, EnableIfaceTwiceIsIdempotent) {
  World world(1);
  Link& lan = world.add_link("lan");
  NodeRuntime& r = world.add_router("R", {&lan});
  world.finalize();
  IfaceId iface = r.iface_on(lan);
  r.pim->enable_iface(iface);  // already enabled by add_router
  r.mld->enable_iface(iface);
  world.run_until(Time::sec(70));
  // Exactly one hello stream (t=0, 30, 60) — not doubled.
  EXPECT_EQ(world.net().counters().get("pimdm/tx/hello"), 3u);
}

TEST(EdgeCases, HostOutOfCoverageThenBack) {
  World world(3);
  Link& l1 = world.add_link("L1");
  Link& l2 = world.add_link("L2");
  world.add_router("R", {&l1, &l2});
  NodeRuntime& h = world.add_host("H", l1);
  NodeRuntime& src = world.add_host("S", l1);
  world.finalize();

  GroupReceiverApp app(*h.stack, kPort);
  h.service->subscribe(kGroup);
  CbrSource source(
      world.scheduler(),
      [&](Bytes p) {
        src.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  world.run_until(Time::sec(5));
  std::uint64_t before = app.unique_received();
  ASSERT_GT(before, 30u);

  // Radio silence: detach entirely for 10 s, then reattach to L2.
  h.node->iface(0).detach();
  world.scheduler().schedule_at(Time::sec(15), [&] {
    h.node->iface(0).attach(l2);
  });
  world.run_until(Time::sec(14));
  EXPECT_EQ(app.unique_received(), before);  // nothing while detached
  world.run_until(Time::sec(30));
  EXPECT_GT(app.received_in(Time::sec(16), Time::sec(30)), 100u);
  EXPECT_TRUE(h.mn->away_from_home());
}

TEST(EdgeCases, HomeAgentAdoptAndDropBindingDirectly) {
  World world(1);
  Link& hl = world.add_link("HL");
  Link& fl = world.add_link("FL");
  NodeRuntime& r = world.add_router("R", {&hl, &fl});
  world.add_host("H", hl);
  world.finalize();

  Address home = Address::parse("2001:db8:1:0:abc::1");
  Address coa = Address::parse("2001:db8:2:0:abc::1");
  r.ha->adopt_binding(home, coa, 1, Time::sec(100), {kGroup});
  EXPECT_EQ(r.ha->cache().size(), 1u);
  EXPECT_TRUE(r.ha->represents(kGroup));
  EXPECT_TRUE(r.stack->intercepts(home));
  EXPECT_TRUE(r.pim->is_local_receiver(kGroup));

  r.ha->drop_binding(home);
  EXPECT_EQ(r.ha->cache().size(), 0u);
  EXPECT_FALSE(r.ha->represents(kGroup));
  EXPECT_FALSE(r.stack->intercepts(home));
  EXPECT_FALSE(r.pim->is_local_receiver(kGroup));
  r.ha->drop_binding(home);  // idempotent
}

TEST(EdgeCases, AdoptedBindingExpiresLikeAnyOther) {
  World world(1);
  Link& hl = world.add_link("HL");
  NodeRuntime& r = world.add_router("R", {&hl});
  world.add_host("H", hl);
  world.finalize();
  Address home = Address::parse("2001:db8:1:0:abc::1");
  r.ha->adopt_binding(home, Address::parse("2001:db8:2::9"), 1,
                      Time::sec(50), {kGroup});
  world.run_until(Time::sec(51));
  EXPECT_EQ(r.ha->cache().size(), 0u);
  EXPECT_FALSE(r.ha->represents(kGroup));
}

TEST(EdgeCases, HaRedundancyWorksOverRipng) {
  // The extensions compose: failover with a live routing protocol.
  WorldConfig config;
  config.unicast = UnicastRouting::kRipng;
  World world(1, config);
  Link& hl = world.add_link("HL");
  Link& tl = world.add_link("TL");
  Link& fl = world.add_link("FL");
  NodeRuntime& ha1 = world.add_router("HA1", {&hl, &tl});
  NodeRuntime& ha2 = world.add_router("HA2", {&hl, &tl});
  world.add_router("FR", {&tl, &fl});
  NodeRuntime& mn = world.add_host(
      "MN", hl, {McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  NodeRuntime& src = world.add_host("SRC", hl);
  world.finalize();

  HaRedundancy red2(*ha2.stack, *ha2.ha, *ha2.udp, ha2.iface_on(hl),
                    ha2.address_on(hl));
  red2.add_peer(ha1.address_on(hl),
                {ha1.address_on(hl), ha1.address_on(tl)});
  HaRedundancy red1(*ha1.stack, *ha1.ha, *ha1.udp, ha1.iface_on(hl),
                    ha1.address_on(hl));

  GroupReceiverApp app(*mn.stack, kPort);
  mn.service->subscribe(kGroup);
  CbrSource source(
      world.scheduler(),
      [&](Bytes p) {
        src.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(2));  // after RIPng converges
  world.scheduler().schedule_at(Time::sec(5), [&] { mn.mn->move_to(fl); });
  world.run_until(Time::sec(20));
  ASSERT_GT(app.unique_received(), 80u);

  const Address ha1_id = ha1.address_on(hl);
  for (const auto& iface : ha1.node->interfaces()) iface->detach();
  world.run_until(Time::sec(60));
  EXPECT_TRUE(red2.has_taken_over(ha1_id));
  EXPECT_GT(app.received_in(Time::sec(35), Time::sec(60)), 200u);
}

TEST(EdgeCases, SchedulerRunAfterRunUntil) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(Time::sec(1), [&] { ++ran; });
  s.schedule_at(Time::sec(100), [&] { ++ran; });
  s.run_until(Time::sec(1));
  EXPECT_EQ(ran, 1);
  s.run();  // drains the rest; clock ends at the last event, not never()
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.now(), Time::sec(100));
  EXPECT_FALSE(s.now().is_never());
}

}  // namespace
}  // namespace mip6
