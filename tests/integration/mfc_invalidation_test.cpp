// Flow-cache invalidation regression: the (S,G) MFC layer must be
// invisible. One seeded Figure 1 run exercises every oif-changing
// transition — MLD join/leave (prune + graft), asserts on the looped
// links, router crash/restart, and neighbor expiry (shortened hello
// holdtime, outage longer than it) — and the run with the flow cache on
// must produce a byte-identical trace, identical delivery and identical
// counters (cache hit/miss aside) to the run with it off. A missed
// invalidation shows up here as a stale-cache blackhole: the Auditor's
// delivery checks fail and the traces diverge at the first wrong
// forwarding decision.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/figure1.hpp"
#include "core/traffic.hpp"
#include "fault/chaos.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

struct RunOutput {
  std::string trace;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::uint64_t delivered = 0;
  std::uint64_t mfc_hits = 0;
  bool audits_ok = false;
};

RunOutput run_scenario(DenseEngineKind engine, bool mfc, std::uint64_t seed) {
  WorldConfig config;
  config.dense_engine = engine;
  config.pim.mfc = mfc;
  config.hpim.mfc = mfc;
  // Fast hellos + a holdtime shorter than the outage below, so the crash
  // also exercises the neighbor-expiry invalidation path on RouterD's
  // peers (default holdtime would outlive the test).
  config.pim.hello_period = Time::sec(5);
  config.pim.hello_holdtime = Time::sec(16);
  config.hpim.hello_period = Time::sec(5);
  config.hpim.hello_holdtime_s = 16;

  Figure1 f = build_figure1(seed, config);
  std::vector<TraceRecord> records;
  f.world->net().trace().set_sink(Trace::recorder(records));

  Address group = Figure1::group();
  GroupReceiverApp app3(*f.recv3->stack, kPort);
  GroupReceiverApp app1(*f.recv1->stack, kPort);
  f.recv3->service->subscribe(group);
  auto* sender = f.sender;
  CbrSource source(
      f.world->scheduler(),
      [sender, group](Bytes p) {
        sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));

  // Mid-run membership churn: a join (graft / interest flip toward the
  // sender) and a late leave (prune) while data keeps flowing.
  NodeRuntime* recv1 = f.recv1;
  f.world->scheduler().schedule_at(Time::sec(12), [recv1, group] {
    recv1->service->subscribe(group);
  });
  f.world->scheduler().schedule_at(Time::sec(48), [recv1, group] {
    recv1->service->unsubscribe(group);
  });

  // Crash RouterD long enough for its neighbors' holdtimes to expire,
  // then bring it back (entry/cache rebuild + resync).
  FaultPlan plan;
  plan.router_crash(Time::sec(20), "RouterD")
      .router_restart(Time::sec(40), "RouterD");
  ChaosEngine chaos(*f.world, plan);
  chaos.arm();

  f.world->run_until(Time::sec(60));

  RunOutput out;
  for (const TraceRecord& r : records) out.trace += r.str() + "\n";
  auto& counters = f.world->net().counters();
  out.mfc_hits = counters.get("pimdm/mfc-hit") + counters.get("hpimdm/mfc-hit");
  for (auto& [name, value] : counters.snapshot()) {
    // The hit/miss tallies are the one legitimate difference between the
    // cached and uncached data planes.
    if (name.find("mfc") != std::string::npos) continue;
    out.counters.emplace_back(name, value);
  }
  out.delivered = app3.unique_received() + app1.unique_received();
  out.audits_ok = chaos.all_audits_ok();
  return out;
}

class MfcInvalidation : public ::testing::TestWithParam<DenseEngineKind> {};

TEST_P(MfcInvalidation, CachedDataPlaneIsByteIdenticalToUncached) {
  RunOutput cached = run_scenario(GetParam(), /*mfc=*/true, 71);
  RunOutput uncached = run_scenario(GetParam(), /*mfc=*/false, 71);

  // The cache actually engaged — otherwise this proves nothing.
  EXPECT_GT(cached.mfc_hits, 0u);
  EXPECT_EQ(uncached.mfc_hits, 0u);

  EXPECT_GT(cached.delivered, 0u);
  EXPECT_EQ(cached.delivered, uncached.delivered);
  EXPECT_GT(cached.trace.size(), 0u);
  EXPECT_EQ(cached.trace, uncached.trace);
  EXPECT_EQ(cached.counters, uncached.counters);
  EXPECT_TRUE(cached.audits_ok);
  EXPECT_TRUE(uncached.audits_ok);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, MfcInvalidation,
                         ::testing::Values(DenseEngineKind::kPimDm,
                                           DenseEngineKind::kHpimDm),
                         [](const auto& param_info) {
                           return param_info.param == DenseEngineKind::kPimDm
                                      ? "pimdm"
                                      : "hpimdm";
                         });

}  // namespace
}  // namespace mip6
