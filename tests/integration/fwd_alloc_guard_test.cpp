// Allocation guard for the steady-state multicast data plane.
//
// This TU overrides global operator new/delete with counting wrappers (its
// own test binary — the override is process-wide) and drives pre-built
// datagrams through a converged 3-router line, asserting that forwarding a
// packet end-to-end across every router allocates NOTHING once warm. This
// is the invariant the MFC flow cache exists for: the per-packet oiflist
// std::vector is gone, replicas share one pooled hop-limit-decremented
// buffer, counters are pre-resolved cells and timers recycle through the
// scheduler free list. Covers both dense-mode engines.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/random_topology.hpp"
#include "ipv6/header.hpp"
#include "ipv6/udp.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mip6 {
namespace {

std::uint64_t allocations() {
  return g_allocs.load(std::memory_order_relaxed);
}

class FwdAllocGuard : public ::testing::TestWithParam<DenseEngineKind> {};

TEST_P(FwdAllocGuard, SteadyStateForwardingDoesNotAllocate) {
  WorldConfig config;
  config.dense_engine = GetParam();
  RandomTopology topo = build_line_topology(3, config, /*seed=*/7);
  World& world = *topo.world;

  // A real host on the first stub provides the source address (so every
  // router's RPF check points back along the line).
  NodeRuntime& sender = world.add_host("S", *topo.stub_links[0]);
  world.finalize();

  // Pin the far router as a local receiver (the home-agent "join on
  // behalf" path): the tree stays up end-to-end with no end-host delivery
  // in the measured window — receiver apps keep per-packet logs, which is
  // their allocation, not the data plane's.
  Address group = Address::parse("ff1e::1");
  topo.routers[2]->dense->add_local_receiver(group);

  // Converge: addresses assigned, first hellos exchanged, MLD startup
  // burst done. 8 s sits in the protocol-quiet window (next hellos at
  // 30 s), so the measured loop sees data events only.
  world.run_until(Time::sec(8));

  const auto& ifaces = sender.stack->node().interfaces();
  ASSERT_FALSE(ifaces.empty());
  IfaceId sender_if = ifaces[0]->id();
  ASSERT_TRUE(sender.stack->has_global_address(sender_if));

  // A well-formed UDP datagram (valid checksum, no payload, a port nobody
  // listens on): MLD routers are multicast-promiscuous, so every hop also
  // attempts local delivery — it must take the silent no-listener path,
  // not the parse-reject path (which builds taxonomy counter names).
  Address src = sender.stack->global_address(sender_if);
  UdpDatagram udp;
  udp.src_port = 9000;
  udp.dst_port = 9000;
  Bytes udp_wire = udp.serialize(src, group);

  Ipv6Header hdr;
  hdr.src = src;
  hdr.dst = group;
  hdr.next_header = proto::kUdp;
  hdr.hop_limit = 64;
  hdr.payload_length = static_cast<std::uint16_t>(udp_wire.size());
  BufferWriter w(Ipv6Header::kSize + udp_wire.size());
  hdr.write(w);
  w.raw(udp_wire);
  // One immutable packet reused for every injection: the data plane never
  // mutates a received buffer (forwarding installs a pooled decremented
  // copy), so identity-reuse is safe and keeps the injector itself silent.
  Packet pkt(std::move(w).take(), /*uid=*/424242, world.net().now());

  // The first router's interface on the sender stub; deliver() runs the
  // full receive + forward path synchronously.
  const Interface* rx_if = nullptr;
  for (const auto& i : topo.routers[0]->stack->node().interfaces()) {
    if (i->link() == topo.stub_links[0]) rx_if = i.get();
  }
  ASSERT_NE(rx_if, nullptr);

  auto inject_and_drain = [&] {
    rx_if->deliver(pkt);
    world.run_until(world.net().now() + Time::ms(2));
  };

  // Warm-up: create the (S,G) entries down the line, fill the flow
  // caches, grow the event heap / free lists / buffer pool to steady
  // state.
  for (int i = 0; i < 128; ++i) inject_and_drain();

  const std::uint64_t before = allocations();
  for (int i = 0; i < 1000; ++i) inject_and_drain();
  EXPECT_EQ(allocations(), before)
      << "forwarding a multicast datagram allocated on the steady-state "
         "data path";
}

INSTANTIATE_TEST_SUITE_P(BothEngines, FwdAllocGuard,
                         ::testing::Values(DenseEngineKind::kPimDm,
                                           DenseEngineKind::kHpimDm),
                         [](const auto& param_info) {
                           return param_info.param == DenseEngineKind::kPimDm
                                      ? "pimdm"
                                      : "hpimdm";
                         });

}  // namespace
}  // namespace mip6
