// End-to-end smoke tests on the paper's Figure 1 network: static multicast
// delivery, the initial tree shape, and the basic mobile-receiver and
// mobile-sender scenarios of Figures 2-4.
#include <gtest/gtest.h>

#include "core/figure1.hpp"
#include "core/metrics.hpp"
#include "core/traffic.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

struct Harness {
  Figure1 f;
  Address group = Figure1::group();
  std::unique_ptr<CbrSource> source;
  std::unique_ptr<GroupReceiverApp> app1, app2, app3;

  explicit Harness(StrategyOptions strategy = {}, std::uint64_t seed = 1,
                   WorldConfig config = {}) {
    f = build_figure1(seed, config, strategy);
    app1 = std::make_unique<GroupReceiverApp>(*f.recv1->stack, kPort);
    app2 = std::make_unique<GroupReceiverApp>(*f.recv2->stack, kPort);
    app3 = std::make_unique<GroupReceiverApp>(*f.recv3->stack, kPort);
    for (NodeRuntime* r : {f.recv1, f.recv2, f.recv3}) {
      r->service->subscribe(group);
    }
    source = std::make_unique<CbrSource>(
        f.world->scheduler(),
        [this](Bytes payload) {
          f.sender->service->send_multicast(group, kPort, kPort,
                                            std::move(payload));
        },
        Time::ms(100), 64);
  }

  void run_until(Time t) { f.world->run_until(t); }
};

TEST(Figure1Smoke, StaticDeliveryToAllReceivers) {
  Harness h;
  h.source->start(Time::sec(5));
  h.run_until(Time::sec(30));

  // 100 ms CBR from t=5s to t=30s: ~250 datagrams.
  EXPECT_GT(h.app1->unique_received(), 200u);
  EXPECT_GT(h.app2->unique_received(), 200u);
  EXPECT_GT(h.app3->unique_received(), 200u);
  // Duplicate-free delivery after assert resolution (at most a couple of
  // duplicates from the initial flood through both B and C).
  EXPECT_LT(h.app1->duplicates(), 5u);
  EXPECT_LT(h.app3->duplicates(), 5u);
}

TEST(Figure1Smoke, InitialTreeMatchesFigure1) {
  Harness h;
  h.source->start(Time::sec(5));
  h.run_until(Time::sec(60));

  const Address s = h.f.sender->mn->home_address();
  // Every router learned the (S,G) entry during the flood.
  for (NodeRuntime* r : {h.f.a, h.f.b, h.f.c, h.f.d, h.f.e}) {
    EXPECT_TRUE(r->pim->has_entry(s, h.group))
        << r->node->name() << " lacks (S,G)";
  }
  // Tree shape: data flows on Links 1-4, not onto 5 and 6 (steady state).
  McastMetrics metrics(h.f.world->net(), h.f.world->routing(), h.group,
                       kPort);
  metrics.update_reference_tree(
      h.f.link1->id(),
      {h.f.link1->id(), h.f.link2->id(), h.f.link4->id()});
  h.run_until(Time::sec(90));
  EXPECT_GT(metrics.data_tx_count_on(h.f.link1->id()), 0u);
  EXPECT_GT(metrics.data_tx_count_on(h.f.link2->id()), 0u);
  EXPECT_GT(metrics.data_tx_count_on(h.f.link3->id()), 0u);
  EXPECT_GT(metrics.data_tx_count_on(h.f.link4->id()), 0u);
  EXPECT_EQ(metrics.data_tx_count_on(h.f.link5->id()), 0u);
  EXPECT_EQ(metrics.data_tx_count_on(h.f.link6->id()), 0u);
  // Steady state is duplicate-free: one transmission per datagram per tree
  // link (small tolerance for datagrams still in flight at the horizon).
  EXPECT_NEAR(metrics.stretch(), 1.0, 0.02);
}

TEST(Figure1Smoke, MobileReceiverLocalMembershipGrafts) {
  // Figure 2: Receiver 3 moves Link4 -> Link6; with unsolicited reports the
  // join delay is small; Router D keeps forwarding onto Link4 (leave
  // delay) until the MLD listener expires.
  Harness h;
  h.source->start(Time::sec(1));
  h.run_until(Time::sec(10));
  ASSERT_GT(h.app3->unique_received(), 50u);

  const Time move_at = Time::sec(10);
  h.f.recv3->mn->move_to(*h.f.link6);
  h.run_until(Time::sec(20));

  auto first = h.app3->first_rx_at_or_after(move_at);
  ASSERT_TRUE(first.has_value());
  Time join_delay = *first - move_at;
  // Movement detection (100 ms) + unsolicited report + graft: well under 2 s.
  EXPECT_LT(join_delay, Time::sec(2)) << join_delay.str();
  EXPECT_GT(join_delay, Time::zero());
}

TEST(Figure1Smoke, MobileReceiverBidirTunnelDelivers) {
  // Figure 3: Receiver 3 with a bidirectional tunnel moves Link4 -> Link1;
  // traffic arrives through the tunnel from Router D.
  Harness h(StrategyOptions{McastStrategy::kBidirTunnel,
                            HaRegistration::kGroupListBu});
  h.source->start(Time::sec(1));
  h.run_until(Time::sec(10));
  ASSERT_GT(h.app3->unique_received(), 50u);

  h.f.recv3->mn->move_to(*h.f.link1);
  h.run_until(Time::sec(30));
  auto first = h.app3->first_rx_at_or_after(Time::sec(10));
  ASSERT_TRUE(first.has_value());
  EXPECT_LT(*first - Time::sec(10), Time::sec(2));
  // Encapsulation happened at the home agent (Router D).
  EXPECT_GT(h.f.world->net().counters().get("ha/encap-multicast"), 0u);
  // And the mobile node decapsulated.
  EXPECT_GT(h.f.world->net().counters().get("mn/decap"), 0u);
}

TEST(Figure1Smoke, MobileSenderReverseTunnelKeepsTree) {
  // Figure 4: Sender S moves to Link6 with a reverse tunnel; the original
  // (S_home, G) tree keeps delivering and no new tree is created.
  Harness h(StrategyOptions{McastStrategy::kBidirTunnel,
                            HaRegistration::kGroupListBu});
  h.source->start(Time::sec(1));
  h.run_until(Time::sec(10));
  std::uint64_t before = h.app2->unique_received();
  ASSERT_GT(before, 50u);

  h.f.sender->mn->move_to(*h.f.link6);
  h.run_until(Time::sec(30));

  // Receivers keep receiving after the handoff completes.
  EXPECT_GT(h.app2->unique_received(), before + 100);
  // No second source-rooted tree: every (S,G) entry anywhere names the home
  // address as source.
  const Address home = h.f.sender->mn->home_address();
  const Address coa = h.f.sender->mn->care_of();
  ASSERT_FALSE(coa.is_unspecified());
  for (NodeRuntime* r : {h.f.a, h.f.b, h.f.c, h.f.d, h.f.e}) {
    EXPECT_FALSE(r->pim->has_entry(coa, h.group))
        << r->node->name() << " built a care-of tree";
  }
  EXPECT_GT(h.f.world->net().counters().get("mn/encap"), 0u);
  EXPECT_GT(h.f.world->net().counters().get("ha/decap-multicast"), 0u);
}

TEST(Figure1Smoke, MobileSenderLocalCreatesNewTreeAndAsserts) {
  // Section 4.3.1: a locally-sending mobile sender causes a brand-new
  // flooded tree and stale-source asserts.
  Harness h;  // local membership everywhere
  h.source->start(Time::sec(1));
  h.run_until(Time::sec(10));

  h.f.sender->mn->move_to(*h.f.link2);
  h.run_until(Time::sec(40));

  const Address home = h.f.sender->mn->home_address();
  const Address coa = h.f.sender->mn->care_of();
  ASSERT_FALSE(coa.is_unspecified());
  // New tree rooted at the care-of address exists...
  bool coa_tree = false;
  for (NodeRuntime* r : {h.f.a, h.f.b, h.f.c, h.f.d, h.f.e}) {
    if (r->pim->has_entry(coa, h.group)) coa_tree = true;
  }
  EXPECT_TRUE(coa_tree);
  // ...receivers still get data (from the new tree).
  EXPECT_GT(h.app3->received_in(Time::sec(20), Time::sec(40)), 100u);
  // Stale-source packets on Link2 triggered asserts at Router A.
  EXPECT_GT(h.f.world->net().counters().get("pimdm/tx/assert"), 0u);
  (void)home;
}

}  // namespace
}  // namespace mip6
