// Statistical shape of the paper's central quantity: for a query-waiting
// mobile receiver, the join delay is (time to the next Query) + response delay,
// i.e. ~Uniform(0, T_Query) + small — mean ≈ T_Query/2, max ≈ T_Query +
// T_RespDel. Samples come from many seeds/move phases; the parallel runner
// collects them.
#include <gtest/gtest.h>

#include "core/figure1.hpp"
#include "core/traffic.hpp"
#include "runner/parallel.hpp"

namespace mip6 {
namespace {

TEST(JoinDelayDistribution, QueryWaitIsUniformOverTheQueryInterval) {
  constexpr int kTq = 60;
  auto body = [](std::uint64_t seed) {
    WorldConfig config;
    config.mld = MldConfig::with_query_interval(Time::sec(kTq));
    config.mld_host.unsolicited_reports = false;
    Figure1 f = build_figure1(seed, config);
    Address group = Figure1::group();
    GroupReceiverApp app(*f.recv3->stack, Figure1::kDataPort);
    f.recv3->service->subscribe(group);
    CbrSource source(
        f.world->scheduler(),
        [&](Bytes p) {
          f.sender->service->send_multicast(group, Figure1::kDataPort,
                                            Figure1::kDataPort, std::move(p));
        },
        Time::ms(100), 64);
    source.start(Time::ms(500));
    // Randomize the move phase against the query schedule.
    Rng phase(Rng::derive_seed(seed, 0xfa5e));
    Time move_at =
        Time::sec(30) + Time::seconds(phase.uniform(0.0, kTq));
    f.world->scheduler().schedule_at(
        move_at, [&f] { f.recv3->mn->move_to(*f.link6); });
    f.world->run_until(move_at + Time::sec(kTq + 15));
    ReplicationResult r;
    auto first = app.first_rx_at_or_after(move_at);
    r["join_delay_s"] =
        first ? (*first - move_at).to_seconds() : -1.0;
    return r;
  };

  ReplicationOptions opts;
  opts.replications = 48;
  opts.base_seed = 20260707;
  auto merged = run_replications(opts, body);
  const Summary& join = merged.at("join_delay_s");

  ASSERT_EQ(join.count(), 48u);
  EXPECT_GT(join.min(), -0.5);  // every replication eventually joined
  // Uniform(0, 60) + response delay in [0, 10]:
  //   mean ≈ 30 + 5 = 35, tolerate sampling noise.
  EXPECT_NEAR(join.mean(), 35.0, 8.0);
  EXPECT_LT(join.max(), kTq + 10 + 2.0);  // hard bound from the paper
  EXPECT_GT(join.max(), 40.0);            // the tail actually occurs
  EXPECT_LT(join.min(), 15.0);            // and so do lucky joins

  // Spread check: quartiles of a uniform-ish distribution are distinct.
  EXPECT_LT(join.percentile(25), join.percentile(50) - 3.0);
  EXPECT_LT(join.percentile(50), join.percentile(75) - 3.0);

  // Tails present on both ends of the interval. The lower-tail bound is
  // loose: with 48 samples the empirical p10 of Uniform(0,60)+U(0,10)
  // wobbles by several seconds across rng stream layouts.
  EXPECT_LT(join.percentile(10), 18.0);
  EXPECT_GT(join.percentile(90), 42.0);
}

}  // namespace
}  // namespace mip6
