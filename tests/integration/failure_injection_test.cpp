// Failure injection: random packet corruption and loss on links. The
// protocol stack must never crash, must count malformed input, and its
// recovery machinery (checksum rejection, graft retransmission, BU
// retransmission, MLD robustness reports) must keep the application
// streams alive.
#include <gtest/gtest.h>

#include "core/figure1.hpp"
#include "core/traffic.hpp"
#include "net/link.hpp"
#include "sim/rng.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, StreamRecoversUnderRandomLossOnEveryLink) {
  // Dense mode is *specified* to be fragile to individual control losses:
  // a lost Join override can sever a branch until the 210 s prune holdtime
  // expires and the next flood repairs it. The invariant to hold is
  // therefore recovery, not continuity: over a horizon spanning several
  // prune lifetimes the stream must keep coming back, and nothing may
  // crash or wedge permanently.
  const double loss = GetParam();
  Figure1 f = build_figure1(11);
  Address group = Figure1::group();
  auto drop_rng = std::make_shared<Rng>(4096);
  for (const auto& link : f.world->net().links()) {
    link->set_drop_fn([drop_rng, loss](const Packet&, const Interface&) {
      return drop_rng->uniform() < loss;
    });
  }
  GroupReceiverApp app(*f.recv3->stack, kPort);
  f.recv3->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  f.world->scheduler().schedule_at(Time::sec(30), [&] {
    f.recv3->mn->move_to(*f.link6);
  });
  const Time horizon = Time::sec(900);
  f.world->run_until(horizon);

  // Delivery happened in the last quarter of the run (the tree keeps
  // healing), and the overall ratio is far above "collapsed".
  EXPECT_GT(app.received_in(Time::sec(675), horizon), 50u)
      << "loss=" << loss;
  double delivered =
      static_cast<double>(app.unique_received()) / source.sent();
  // Floor: the raw 4-link data-loss survival, discounted for branch
  // outages while pruned state heals. The discount leaves slack for the
  // drop sequence itself: drops are drawn in delivery order, so which
  // control packet a given roll kills shifts with event-order details,
  // and at 15% loss a single unlucky graft loss costs a 210 s outage.
  double survival = 1.0;
  for (int hop = 0; hop < 4; ++hop) survival *= (1.0 - loss);
  EXPECT_GT(delivered, survival * 0.25) << "loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.01, 0.05, 0.15),
                         [](const ::testing::TestParamInfo<double>& pi) {
                           return "pct" + std::to_string(static_cast<int>(
                                              pi.param * 100));
                         });

TEST(FailureInjection, RandomCorruptionNeverCrashesAndIsCounted) {
  Figure1 f = build_figure1(13);
  Address group = Figure1::group();
  // Corrupt ~20% of all frames by flipping a random byte on delivery. The
  // drop function mutates a copy via const_cast-free trick: we can't mutate
  // the packet in the hook, so instead corrupt at the source: wrap the
  // CBR payload occasionally and, more importantly, inject raw junk frames
  // directly onto links.
  GroupReceiverApp app(*f.recv3->stack, kPort);
  f.recv3->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));

  // Periodically blast malformed frames onto every link from the sender's
  // interface: truncated datagrams, bad versions, random junk, and valid
  // headers with corrupted ICMPv6/PIM payloads.
  auto junk_rng = std::make_shared<Rng>(90210);
  for (int t = 2; t < 60; t += 2) {
    f.world->scheduler().schedule_at(Time::sec(t), [&f, junk_rng] {
      for (const auto& link : f.world->net().links()) {
        if (link->attached().empty()) continue;
        Interface* from = link->attached()[0];
        Bytes junk(junk_rng->uniform_int(80));
        for (auto& b : junk) {
          b = static_cast<std::uint8_t>(junk_rng->next_u64());
        }
        from->send(f.world->net().make_packet(std::move(junk)));

        // A syntactically valid IPv6 header whose PIM payload is garbage.
        DatagramSpec spec;
        spec.src = Address::parse("fe80::bad");
        spec.dst = Address::all_pim_routers();
        spec.hop_limit = 1;
        spec.protocol = proto::kPim;
        spec.payload = Bytes(16, 0xff);
        from->send(f.world->net().make_packet(build_datagram(spec)));
      }
    });
  }
  f.world->run_until(Time::sec(60));

  // Junk was seen and rejected...
  auto& c = f.world->net().counters();
  EXPECT_GT(c.get("ipv6/rx-drop/parse-error"), 0u);
  EXPECT_GT(c.get("pimdm/rx-drop/parse-error"), 0u);
  // ...and the real stream was unaffected.
  EXPECT_GT(app.unique_received(), 550u);
}

TEST(FailureInjection, CorruptedDataPayloadRejectedByChecksum) {
  Figure1 f = build_figure1(17);
  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv1->stack, kPort);
  f.recv1->service->subscribe(group);

  // Hand-corrupt a valid data datagram and deliver it directly.
  CbrPayload p;
  p.seq = 0;
  DatagramSpec spec;
  spec.src = f.sender->mn->home_address();
  spec.dst = group;
  spec.protocol = proto::kUdp;
  spec.payload =
      UdpDatagram{kPort, kPort, p.encode(64)}.serialize(spec.src, spec.dst);
  Bytes wire = build_datagram(spec);
  wire[50] ^= 0x01;  // flip a bit inside the UDP payload
  f.recv1->stack->receive_as_if(f.recv1->iface(), std::move(wire));
  EXPECT_EQ(app.unique_received(), 0u);  // checksum rejected it
}

TEST(FailureInjection, WireBitFlipsFeedEveryParserWithoutCrashing) {
  // Impair every link with random byte flips for the whole run, so each
  // parser in the stack — IPv6 header, UDP checksum, ICMPv6/MLD, PIM,
  // Binding Updates — sees corrupted input at its own layer. Nothing may
  // crash; flips must surface as counted parse/checksum rejections; and
  // the data stream plus the mobility machinery must survive (corrupted
  // frames behave like loss, which the protocols already recover from).
  Figure1 f = build_figure1(59);
  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv3->stack, kPort);
  f.recv3->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(50), 64);
  source.start(Time::sec(1));
  for (const auto& link : f.world->net().links()) {
    link->set_impairment(LinkImpairment{0.0, 0.08, Time::zero()});
  }
  // Roam mid-run: Binding Updates and tunnel traffic cross flipped wires
  // too, covered by the BU retransmission machinery.
  f.world->scheduler().schedule_at(Time::sec(60), [&] {
    f.recv3->mn->move_to(*f.link6);
  });
  f.world->run_until(Time::sec(120));

  std::uint64_t corrupted = 0;
  for (const auto& link : f.world->net().links()) {
    corrupted += link->corrupted_packets();
  }
  EXPECT_GT(corrupted, 100u);
  // The per-link counters surfaced in the registry match the link objects.
  auto& c = f.world->net().counters();
  EXPECT_EQ(c.get("link/Link2/corrupted"),
            f.world->net().link_by_name("Link2").corrupted_packets());
  // Flipped frames were rejected where their damage became visible.
  std::uint64_t rejects = c.get("ipv6/rx-drop/parse-error") +
                          c.get("udp/rx-drop/parse-error") +
                          c.get("icmpv6/rx-drop/parse-error") +
                          c.get("pimdm/rx-drop/parse-error") +
                          c.get("mld/rx-drop/parse-error");
  EXPECT_GT(rejects, 50u);
  EXPECT_GT(c.get("udp/rx-drop/parse-error"), 0u);
  // The stream survived end to end despite per-hop corruption.
  EXPECT_GT(app.unique_received(), source.sent() / 3);
}

TEST(FailureInjection, RouterFailureSevershPathUntilRemoved) {
  // Router C fails (all interfaces detach). B remains as the parallel
  // path on Link2/Link3; the stream must keep (or resume) flowing without
  // any routing recomputation because B was already attached.
  Figure1 f = build_figure1(19);
  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv3->stack, kPort);
  f.recv3->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  f.world->run_until(Time::sec(20));
  std::uint64_t before = app.unique_received();
  ASSERT_GT(before, 100u);

  // Kill whichever of B/C currently forwards onto Link3.
  const Address s = f.sender->mn->home_address();
  NodeRuntime* forwarder = nullptr;
  for (NodeRuntime* r : {f.b, f.c}) {
    if (!r->pim->outgoing(s, group).empty()) forwarder = r;
  }
  ASSERT_NE(forwarder, nullptr);
  for (const auto& iface : forwarder->node->interfaces()) iface->detach();

  // The surviving router takes over once its assert-loser state (180 s)
  // and any pruned downstream state (210 s holdtime) expire. Verify
  // delivery resumes within that bound.
  f.world->run_until(Time::sec(20) + Time::sec(300));
  std::uint64_t tail_window =
      app.received_in(Time::sec(20) + Time::sec(230),
                      Time::sec(20) + Time::sec(300));
  EXPECT_GT(tail_window, 100u)
      << "stream did not recover after forwarder failure";
}

}  // namespace
}  // namespace mip6
