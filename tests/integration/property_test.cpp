// Property-style invariants checked across seeds and parameters with
// parameterized gtest: deterministic replay, loop-freedom and RPF
// consistency of the PIM state, duplicate-free steady-state delivery, and
// address/RIB model equivalences.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/figure1.hpp"
#include "core/mobility.hpp"
#include "core/traffic.hpp"
#include "sim/rng.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, RunsAreBitReproducible) {
  auto run = [&](std::uint64_t seed) {
    Figure1 f = build_figure1(seed);
    GroupReceiverApp app(*f.recv3->stack, kPort);
    f.recv3->service->subscribe(Figure1::group());
    CbrSource source(
        f.world->scheduler(),
        [&](Bytes p) {
          f.sender->service->send_multicast(Figure1::group(), kPort, kPort,
                                            std::move(p));
        },
        Time::ms(100), 64);
    source.start(Time::sec(1));
    RandomMover mover(*f.recv3->mn, f.world->net().rng(),
                      {f.link4, f.link5, f.link6}, Time::sec(15));
    mover.start(Time::sec(5));
    f.world->run_until(Time::sec(90));
    return std::make_tuple(app.unique_received(), app.duplicates(),
                           f.world->scheduler().executed_events(),
                           f.world->net().counters().sum_prefix(""));
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

TEST_P(SeedSweep, PimStateInvariants) {
  const std::uint64_t seed = GetParam();
  Figure1 f = build_figure1(seed);
  Address group = Figure1::group();
  f.recv1->service->subscribe(group);
  f.recv3->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  RandomMover mover(*f.recv3->mn, f.world->net().rng(),
                    {f.link2, f.link4, f.link5, f.link6}, Time::sec(20));
  mover.start(Time::sec(10));

  // Check invariants at many instants during the run.
  for (int probe = 1; probe <= 30; ++probe) {
    f.world->run_until(Time::sec(probe * 10));
    for (const auto& r : f.world->routers()) {
      const Address s = f.sender->mn->home_address();
      if (!r->pim->has_entry(s, group)) continue;
      IfaceId incoming = r->pim->incoming(s, group);
      // 1. Never forward onto the incoming interface (loop freedom).
      auto oifs = r->pim->outgoing(s, group);
      EXPECT_EQ(std::count(oifs.begin(), oifs.end(), incoming), 0)
          << r->node->name() << " seed " << seed << " t=" << probe * 10;
      // 2. RPF consistency: the incoming interface matches the unicast
      //    route toward the source.
      const Route* route = r->stack->rib().lookup(s);
      ASSERT_NE(route, nullptr);
      EXPECT_EQ(route->out_iface, incoming)
          << r->node->name() << " seed " << seed;
    }
  }
}

TEST_P(SeedSweep, SteadyStateDeliveryIsDuplicateFreeAndGapless) {
  const std::uint64_t seed = GetParam();
  Figure1 f = build_figure1(seed);
  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv1->stack, kPort);
  f.recv1->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(50), 64);
  source.start(Time::sec(1));
  f.world->run_until(Time::sec(60));

  // Static receiver on the source LAN: every datagram exactly once, and
  // the sequence numbers form a contiguous range.
  EXPECT_EQ(app.duplicates(), 0u) << "seed " << seed;
  EXPECT_GE(app.unique_received() + 1, static_cast<std::uint64_t>(
      source.sent()));  // at most the in-flight last one missing
  std::uint32_t max_seq = 0;
  for (const auto& rx : app.log()) max_seq = std::max(max_seq, rx.seq);
  EXPECT_EQ(app.unique_received(), max_seq + 1) << "gap in sequence";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// --- Model-equivalence properties ------------------------------------------

TEST(AddressProperty, RandomBytesRoundTripThroughText) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    std::array<std::uint8_t, 16> raw;
    for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next_u64());
    Address a = Address::from_bytes(BytesView(raw));
    Address back = Address::parse(a.str());
    EXPECT_EQ(back, a) << a.str();
  }
}

TEST(RibProperty, LookupMatchesBruteForce) {
  Rng rng(7777);
  Rib rib;
  std::vector<Route> routes;
  for (int i = 0; i < 40; ++i) {
    std::array<std::uint8_t, 16> raw{};
    for (int b = 0; b < 8; ++b) {
      raw[b] = static_cast<std::uint8_t>(rng.next_u64());
    }
    std::uint8_t len = static_cast<std::uint8_t>(rng.uniform_int(65));
    Route r{Prefix(Address::from_bytes(BytesView(raw)), len),
            static_cast<IfaceId>(i), Address(),
            static_cast<std::uint32_t>(rng.uniform_int(10))};
    routes.push_back(r);
    rib.add(r);
  }
  for (int trial = 0; trial < 500; ++trial) {
    std::array<std::uint8_t, 16> raw;
    for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next_u64());
    Address dst = Address::from_bytes(BytesView(raw));
    const Route* got = rib.lookup(dst);
    // Brute force: longest prefix, then lowest metric.
    const Route* want = nullptr;
    for (const Route& r : routes) {
      if (!r.prefix.contains(dst)) continue;
      if (want == nullptr || r.prefix.length() > want->prefix.length() ||
          (r.prefix.length() == want->prefix.length() &&
           r.metric < want->metric)) {
        want = &r;
      }
    }
    if (want == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->prefix, want->prefix);
      EXPECT_EQ(got->metric, want->metric);
    }
  }
}

TEST(SchedulerProperty, MatchesReferenceModelUnderRandomOps) {
  Rng rng(31415);
  Scheduler sched;
  // Reference: multiset of (time, id) with manual ordering.
  std::vector<std::pair<Time, int>> expected_order;
  std::vector<int> actual_order;
  std::vector<std::pair<Time, int>> pending;
  int next_id = 0;
  for (int round = 0; round < 50; ++round) {
    int adds = 1 + static_cast<int>(rng.uniform_int(20));
    for (int i = 0; i < adds; ++i) {
      Time at = sched.now() + Time::ms(static_cast<std::int64_t>(
                                  rng.uniform_int(5000)));
      int id = next_id++;
      pending.emplace_back(at, id);
      sched.schedule_at(at, [&actual_order, id] { actual_order.push_back(id); });
    }
    Time horizon = sched.now() + Time::ms(static_cast<std::int64_t>(
                                     rng.uniform_int(3000)));
    // Reference: all pending with at <= horizon fire in (time, id) order
    // (id order == insertion order for equal times).
    std::stable_sort(pending.begin(), pending.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->first <= horizon) {
        expected_order.push_back(*it);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    sched.run_until(horizon);
  }
  ASSERT_EQ(actual_order.size(), expected_order.size());
  for (std::size_t i = 0; i < actual_order.size(); ++i) {
    EXPECT_EQ(actual_order[i], expected_order[i].second) << "index " << i;
  }
}

}  // namespace
}  // namespace mip6
