#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/errors.hpp"

namespace mip6 {
namespace {

TEST(Histogram, BinsSamplesByRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), LogicError);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), LogicError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), LogicError);
}

TEST(Histogram, StrRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  std::string out = h.str(10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bin full bar
  EXPECT_NE(out.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace mip6
