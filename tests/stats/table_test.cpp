#include "stats/table.hpp"

#include <gtest/gtest.h>

#include "util/errors.hpp"

namespace mip6 {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::string out = t.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);  // separator rule
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), LogicError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), LogicError);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), LogicError);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"k", "v"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  std::string csv = t.csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
  EXPECT_EQ(csv.find("plain\""), std::string::npos);
}

TEST(Table, CsvHeaderFirstLine) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv().substr(0, 4), "a,b\n");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace mip6
