#include "stats/summary.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.str(), "n=0");
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.median(), 3.5);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Summary, PercentilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 5; ++i) s.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 1.5);
}

TEST(Summary, PercentileAfterMoreAddsResorts) {
  Summary s;
  s.add(10.0);
  EXPECT_EQ(s.median(), 10.0);
  s.add(0.0);
  s.add(5.0);
  EXPECT_EQ(s.median(), 5.0);
}

TEST(Summary, MergeCombinesSamples) {
  Summary a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_EQ(a.max(), 4.0);
}

TEST(Summary, Ci95ShrinksWithSamples) {
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Summary, StrMentionsAllFields) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  std::string str = s.str(1);
  EXPECT_NE(str.find("mean=2.0"), std::string::npos);
  EXPECT_NE(str.find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace mip6
