#include "stats/counters.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(CounterRegistry, AddAndGet) {
  CounterRegistry c;
  EXPECT_EQ(c.get("x"), 0u);
  c.add("x");
  c.add("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
}

TEST(CounterRegistry, PrefixSum) {
  CounterRegistry c;
  c.add("pimdm/tx/hello", 3);
  c.add("pimdm/tx/prune", 2);
  c.add("pimdm/rx/hello", 10);
  c.add("mld/tx/report", 7);
  EXPECT_EQ(c.sum_prefix("pimdm/tx/"), 5u);
  EXPECT_EQ(c.sum_prefix("pimdm/"), 15u);
  EXPECT_EQ(c.sum_prefix(""), 22u);
  EXPECT_EQ(c.sum_prefix("nothing"), 0u);
}

TEST(CounterRegistry, PrefixSumDoesNotOvermatch) {
  CounterRegistry c;
  c.add("ab", 1);
  c.add("abc", 2);
  c.add("abd", 4);
  c.add("ac", 8);
  EXPECT_EQ(c.sum_prefix("ab"), 7u);  // ab, abc, abd — not ac
}

TEST(CounterRegistry, PrefixSumRangeEndIsExact) {
  // Regression for the naive upper-bound bug: the scan must stop at the
  // first key that no longer starts with the prefix, not at prefix+1 in
  // byte order (which would skip keys like "ab/x" sorting after "ab\xff").
  CounterRegistry c;
  c.add("aa", 1);
  c.add("ab", 2);
  c.add("ab/x", 4);
  c.add("ab0", 8);
  c.add("ab\xff!", 16);
  c.add("ac", 32);
  c.add("b", 64);
  EXPECT_EQ(c.sum_prefix("ab"), 2u + 4u + 8u + 16u);
  EXPECT_EQ(c.sum_prefix("ab/"), 4u);
  EXPECT_EQ(c.sum_prefix("a"), 63u);
  EXPECT_EQ(c.sum_prefix("b"), 64u);
  EXPECT_EQ(c.sum_prefix("\xff"), 0u);
}

TEST(CounterRegistry, SnapshotOrderedByName) {
  CounterRegistry c;
  c.add("b", 2);
  c.add("a", 1);
  auto snap = c.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
}

TEST(CounterRegistry, ResetClears) {
  CounterRegistry c;
  c.add("x", 3);
  c.reset();
  EXPECT_EQ(c.get("x"), 0u);
  EXPECT_TRUE(c.snapshot().empty());
}

}  // namespace
}  // namespace mip6
