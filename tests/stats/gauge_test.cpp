#include "stats/gauge.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(TimeWeightedGauge, PiecewiseConstantAverage) {
  TimeWeightedGauge g;
  g.set(Time::sec(0), 2.0);   // 2 over [0,10)
  g.set(Time::sec(10), 6.0);  // 6 over [10,20)
  // average over [0,20] = (2*10 + 6*10)/20 = 4
  EXPECT_DOUBLE_EQ(g.average(Time::sec(20)), 4.0);
  EXPECT_DOUBLE_EQ(g.value(), 6.0);
  EXPECT_DOUBLE_EQ(g.peak(), 6.0);
}

TEST(TimeWeightedGauge, AddAccumulatesDeltas) {
  TimeWeightedGauge g;
  g.add(Time::sec(0), 1.0);
  g.add(Time::sec(5), 1.0);   // 2 from t=5
  g.add(Time::sec(10), -2.0); // 0 from t=10
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.peak(), 2.0);
  // integral = 1*5 + 2*5 + 0*10 = 15 over 20s
  EXPECT_DOUBLE_EQ(g.average(Time::sec(20)), 0.75);
}

TEST(TimeWeightedGauge, AverageBeforeAnyTimeElapsed) {
  TimeWeightedGauge g(Time::sec(3));
  g.set(Time::sec(3), 7.0);
  EXPECT_DOUBLE_EQ(g.average(Time::sec(3)), 7.0);
}

TEST(TimeWeightedGauge, NonObservedTailCountsAtCurrentValue) {
  TimeWeightedGauge g;
  g.set(Time::sec(0), 4.0);
  EXPECT_DOUBLE_EQ(g.average(Time::sec(100)), 4.0);
}

TEST(TimeWeightedGauge, BackwardsTimeThrows) {
  TimeWeightedGauge g;
  g.set(Time::sec(5), 1.0);
  EXPECT_THROW(g.set(Time::sec(4), 2.0), LogicError);
}

}  // namespace
}  // namespace mip6
