#include "scenario/spec.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

// Minimal valid scenario used as the mutation baseline.
const char* kMinimal = R"({
  "topology": {
    "links": [{"name": "L1"}],
    "routers": [{"name": "R", "links": ["L1"]}],
    "hosts": [{"name": "H", "home": "L1"}]
  }
})";

/// Message of the ScenarioError thrown by parsing `json`, or "" if parsing
/// unexpectedly succeeds.
std::string error_of(const std::string& json) {
  try {
    ScenarioSpec::parse(json);
  } catch (const ScenarioError& e) {
    return e.what();
  }
  return "";
}

void expect_error_contains(const std::string& json, const std::string& text) {
  std::string err = error_of(json);
  EXPECT_NE(err.find(text), std::string::npos)
      << "expected error containing \"" << text << "\", got: \"" << err
      << "\"";
}

TEST(ScenarioSpec, ParsesMinimalSpecWithDefaults) {
  ScenarioSpec s = ScenarioSpec::parse(kMinimal);
  EXPECT_EQ(s.name, "scenario");
  EXPECT_EQ(s.duration, Time::sec(60));
  EXPECT_EQ(s.seed, 1u);
  ASSERT_EQ(s.routers.size(), 1u);
  // Default module set is the full paper role.
  EXPECT_TRUE(s.routers[0].opts.with_mld);
  EXPECT_TRUE(s.routers[0].opts.with_pim);
  EXPECT_TRUE(s.routers[0].opts.with_ha);
  EXPECT_FALSE(s.routers[0].opts.with_ripng.has_value());
  ASSERT_EQ(s.hosts.size(), 1u);
  EXPECT_EQ(s.hosts[0].opts.strategy.strategy,
            McastStrategy::kLocalMembership);
}

TEST(ScenarioSpec, ParsesFullSpec) {
  ScenarioSpec s = ScenarioSpec::parse(R"({
    "name": "full",
    "description": "everything at once",
    "duration_s": 90.5,
    "seed": 7,
    "config": {
      "unicast": "ripng",
      "link_delay_us": 250,
      "mld": {"query_interval_s": 30, "robustness": 3},
      "mld_host": {"unsolicited_reports": false}
    },
    "topology": {
      "links": [{"name": "L1"}, {"name": "L2", "prefix": "2001:db8:aa::/64"}],
      "routers": [
        {"name": "R1", "links": ["L1", "L2"]},
        {"name": "R2", "links": ["L2"], "modules": ["mld"],
         "config": {"mld": {"query_interval_s": 10}}}
      ],
      "link_routers": [{"link": "L2", "router": "R2"}],
      "hosts": [
        {"name": "S", "home": "L1", "strategy": "bidir-tunnel",
         "registration": "tunnel-mld"},
        {"name": "H", "home": "L2",
         "config": {"mipv6": {"binding_lifetime_s": 64}}}
      ]
    },
    "subscriptions": [{"host": "H", "group": "ff1e::1", "at_s": 2}],
    "traffic": [{"type": "cbr", "source": "S", "group": "ff1e::1",
                 "port": 7000, "interval_ms": 50, "payload_bytes": 32,
                 "start_s": 3}],
    "mobility": [{"host": "H", "at_s": 20, "to": "L1"}],
    "faults": [
      {"kind": "link-down", "target": "L2", "at_s": 40},
      {"kind": "link-degrade", "target": "L1", "at_s": 41,
       "loss": 0.1, "corrupt": 0.05, "jitter_ms": 2},
      {"kind": "router-crash", "target": "R1", "at_s": 42},
      {"kind": "host-crash", "target": "H", "at_s": 43}
    ],
    "fault_audit": false,
    "metrics": {"counters": ["pimdm/tx/assert"],
                "counter_prefixes": ["mld/"], "delivery": false}
  })");
  EXPECT_EQ(s.name, "full");
  EXPECT_EQ(s.duration, Time::seconds(90.5));
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.config.unicast, UnicastRouting::kRipng);
  EXPECT_EQ(s.config.link_delay, Time::us(250));
  EXPECT_EQ(s.config.mld.query_interval, Time::sec(30));
  EXPECT_EQ(s.config.mld.robustness, 3);
  EXPECT_FALSE(s.config.mld_host.unsolicited_reports);

  ASSERT_EQ(s.routers.size(), 2u);
  EXPECT_FALSE(s.routers[1].opts.with_pim);
  EXPECT_FALSE(s.routers[1].opts.with_ha);
  ASSERT_TRUE(s.routers[1].opts.mld.has_value());
  EXPECT_EQ(s.routers[1].opts.mld->query_interval, Time::sec(10));
  // Per-router override inherits the world-level base for untouched knobs.
  EXPECT_EQ(s.routers[1].opts.mld->robustness, 3);

  ASSERT_EQ(s.hosts.size(), 2u);
  EXPECT_EQ(s.hosts[0].opts.strategy.strategy, McastStrategy::kBidirTunnel);
  EXPECT_EQ(s.hosts[0].opts.strategy.registration, HaRegistration::kTunnelMld);
  ASSERT_TRUE(s.hosts[1].opts.mipv6.has_value());
  EXPECT_EQ(s.hosts[1].opts.mipv6->binding_lifetime, Time::sec(64));

  ASSERT_EQ(s.subscriptions.size(), 1u);
  EXPECT_EQ(s.subscriptions[0].at, Time::sec(2));
  ASSERT_EQ(s.traffic.size(), 1u);
  EXPECT_EQ(s.traffic[0].port, 7000);
  EXPECT_EQ(s.traffic[0].interval, Time::ms(50));
  EXPECT_EQ(s.traffic[0].payload_bytes, 32u);
  ASSERT_EQ(s.moves.size(), 1u);
  EXPECT_EQ(s.moves[0].to, "L1");
  ASSERT_EQ(s.faults.size(), 4u);
  EXPECT_EQ(s.faults.events()[1].impairment.loss, 0.1);
  EXPECT_EQ(s.faults.events()[1].impairment.jitter, Time::ms(2));
  EXPECT_FALSE(s.fault_audit);
  EXPECT_FALSE(s.metrics.delivery);
  EXPECT_TRUE(s.metrics.events);
}

TEST(ScenarioSpec, UnknownTopLevelKeyRejected) {
  expect_error_contains(R"({"topology": {"links": [], "routers": []},
                            "trafic": []})",
                        "unknown key 'trafic'");
}

TEST(ScenarioSpec, UnknownModuleRejected) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"], "modules": ["mld", "quic"]}]
    }
  })",
                        "unknown module 'quic'");
}

TEST(ScenarioSpec, ModuleDependenciesChecked) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"], "modules": ["pimdm"]}]
    }
  })",
                        "'pimdm' requires 'mld'");
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"],
                   "modules": ["mld", "home-agent"]}]
    }
  })",
                        "'home-agent' requires 'pimdm'");
}

TEST(ScenarioSpec, DanglingLinkRejected) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1", "L9"]}]
    }
  })",
                        "undefined link 'L9'");
}

TEST(ScenarioSpec, HostOnUndefinedLinkRejected) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "hosts": [{"name": "H", "home": "Lx"}]
    }
  })",
                        "undefined link 'Lx'");
}

TEST(ScenarioSpec, DuplicateNamesRejected) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}, {"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}]
    }
  })",
                        "duplicate link 'L1'");
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]},
                  {"name": "R", "links": ["L1"]}]
    }
  })",
                        "duplicate node 'R'");
  // Router and host share a name.
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "N", "links": ["L1"]}],
      "hosts": [{"name": "N", "home": "L1"}]
    }
  })",
                        "duplicate node 'N'");
}

TEST(ScenarioSpec, UnknownReferencesRejected) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "hosts": [{"name": "H", "home": "L1"}]
    },
    "subscriptions": [{"host": "Nobody", "group": "ff1e::1"}]
  })",
                        "undefined host 'Nobody'");
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "hosts": [{"name": "H", "home": "L1"}]
    },
    "traffic": [{"source": "Ghost", "group": "ff1e::1"}]
  })",
                        "undefined host 'Ghost'");
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "hosts": [{"name": "H", "home": "L1"}]
    },
    "mobility": [{"host": "H", "at_s": 5, "to": "L7"}]
  })",
                        "undefined link 'L7'");
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "hosts": [{"name": "H", "home": "L1"}]
    },
    "faults": [{"kind": "router-crash", "target": "Rx", "at_s": 5}]
  })",
                        "undefined router 'Rx'");
  // A host is not a valid router-crash target.
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "hosts": [{"name": "H", "home": "L1"}]
    },
    "faults": [{"kind": "router-crash", "target": "H", "at_s": 5}]
  })",
                        "undefined router 'H'");
}

TEST(ScenarioSpec, BadEnumsRejected) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "hosts": [{"name": "H", "home": "L1", "strategy": "teleport"}]
    }
  })",
                        "unknown strategy 'teleport'");
  expect_error_contains(R"({
    "topology": {"links": [{"name": "L1"}],
                 "routers": [{"name": "R", "links": ["L1"]}]},
    "faults": [{"kind": "explode", "target": "L1", "at_s": 1}]
  })",
                        "unknown fault kind 'explode'");
}

TEST(ScenarioSpec, NonMulticastGroupRejected) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "hosts": [{"name": "H", "home": "L1"}]
    },
    "subscriptions": [{"host": "H", "group": "2001:db8::1"}]
  })",
                        "not a multicast address");
}

TEST(ScenarioSpec, TinyPayloadRejected) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "hosts": [{"name": "H", "home": "L1"}]
    },
    "traffic": [{"source": "H", "group": "ff1e::1", "payload_bytes": 4}]
  })",
                        "payload_bytes");
}

TEST(ScenarioSpec, ParsesProxyModulesAndLinkProxies) {
  ScenarioSpec s = ScenarioSpec::parse(R"({
    "topology": {
      "links": [{"name": "L1"}, {"name": "L2"}],
      "routers": [
        {"name": "R1", "links": ["L1", "L2"],
         "modules": ["mld", "pimdm", "mcast-proxy"]},
        {"name": "R2", "links": ["L2"], "modules": ["mld", "ar-agent"]}
      ],
      "link_proxies": [{"link": "L2", "router": "R1"}],
      "hosts": [
        {"name": "HP", "home": "L1", "strategy": "hier-proxy"},
        {"name": "HM", "home": "L1", "strategy": "mcast-mobility"}
      ]
    }
  })");
  ASSERT_EQ(s.routers.size(), 2u);
  EXPECT_TRUE(s.routers[0].opts.with_proxy);
  EXPECT_FALSE(s.routers[0].opts.with_ar_agent);
  EXPECT_TRUE(s.routers[1].opts.with_ar_agent);
  EXPECT_FALSE(s.routers[1].opts.with_proxy);
  ASSERT_EQ(s.link_proxies.size(), 1u);
  EXPECT_EQ(s.link_proxies[0].link, "L2");
  EXPECT_EQ(s.link_proxies[0].router, "R1");
  ASSERT_EQ(s.hosts.size(), 2u);
  EXPECT_EQ(s.hosts[0].opts.strategy.strategy, McastStrategy::kHierProxy);
  EXPECT_EQ(s.hosts[1].opts.strategy.strategy,
            McastStrategy::kMcastMobility);
}

TEST(ScenarioSpec, ProxyModuleDependenciesChecked) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"],
                   "modules": ["mld", "mcast-proxy"]}]
    }
  })",
                        "'mcast-proxy' requires 'pimdm'");
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"], "modules": ["ar-agent"]}]
    }
  })",
                        "'ar-agent' requires 'mld'");
}

TEST(ScenarioSpec, LinkProxyReferencesChecked) {
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "link_proxies": [{"link": "L9", "router": "R"}]
    }
  })",
                        "undefined link 'L9'");
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}],
      "link_proxies": [{"link": "L1", "router": "Rx"}]
    }
  })",
                        "undefined router 'Rx'");
  // The designated proxy router must actually run the mcast-proxy module.
  expect_error_contains(R"({
    "topology": {
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"],
                   "modules": ["mld", "pimdm"]}],
      "link_proxies": [{"link": "L1", "router": "R"}]
    }
  })",
                        "does not run the 'mcast-proxy' module");
}

TEST(ScenarioSpec, RandomTopologyParses) {
  ScenarioSpec s = ScenarioSpec::parse(R"({
    "topology": {
      "random": {"kind": "line", "routers": 4},
      "hosts": [{"name": "H", "home": "Stub0"}]
    },
    "mobility": [{"host": "H", "at_s": 10, "to": "Stub3"}]
  })");
  ASSERT_TRUE(s.random.has_value());
  EXPECT_EQ(s.random->kind, ScenarioRandomTopology::Kind::kLine);
  EXPECT_EQ(s.random->routers, 4u);
  EXPECT_TRUE(s.links.empty());
}

TEST(ScenarioSpec, RandomExclusiveWithExplicitTopology) {
  expect_error_contains(R"({
    "topology": {
      "random": {"routers": 4},
      "links": [{"name": "L1"}],
      "routers": [{"name": "R", "links": ["L1"]}]
    }
  })",
                        "mutually exclusive");
}

TEST(ScenarioSpec, JsonSyntaxErrorIsParseError) {
  EXPECT_THROW(ScenarioSpec::parse("{not json"), ParseError);
}

TEST(ScenarioSpec, LoadFileNamesTheFile) {
  try {
    ScenarioSpec::load_file("/nonexistent/foo.json");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/foo.json"),
              std::string::npos);
  }
}

TEST(ScenarioSpec, ShippedScenariosLoadAndValidate) {
  for (const char* name :
       {"quickstart", "fig1_tree", "fig2_receiver_local",
        "fig3_receiver_tunnel", "fig4_sender_tunnel"}) {
    std::string path =
        std::string(MIP6_SCENARIO_DIR) + "/" + name + ".json";
    ScenarioSpec s = ScenarioSpec::load_file(path);
    EXPECT_EQ(s.name, name) << path;
    EXPECT_FALSE(s.description.empty()) << path;
  }
}

}  // namespace
}  // namespace mip6
