// Round-trip parity: compiling a shipped Figure 1-4 scenario file must
// reproduce, byte for byte, the trace and counter output of the equivalent
// hand-wired construction (the pre-scenario idiom used by the benches).
// Any drift in the compiler's canonical construction order shows up here
// as a trace diff.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/figure1.hpp"
#include "core/metrics.hpp"
#include "core/traffic.hpp"
#include "runner/parallel.hpp"
#include "scenario/run.hpp"

namespace mip6 {
namespace {

constexpr std::uint16_t kPort = Figure1::kDataPort;

struct RunOutput {
  std::string trace;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::uint64_t> delivered;  // Receiver1, Receiver2, Receiver3
};

std::string trace_str(const std::vector<TraceRecord>& records) {
  std::string out;
  for (const TraceRecord& r : records) out += r.str() + "\n";
  return out;
}

/// Compiles and runs a shipped scenario file for `horizon`.
RunOutput run_compiled(const std::string& file, Time horizon) {
  ScenarioSpec spec =
      ScenarioSpec::load_file(std::string(MIP6_SCENARIO_DIR) + "/" + file);
  std::vector<TraceRecord> records;
  CompiledScenario c =
      compile_scenario(spec, spec.seed, [&records](World& w) {
        w.net().trace().set_sink(Trace::recorder(records));
      });
  c.world->run_until(horizon);
  RunOutput out;
  out.trace = trace_str(records);
  out.counters = c.world->net().counters().snapshot();
  for (const char* host : {"Receiver1", "Receiver2", "Receiver3"}) {
    out.delivered.push_back(c.receiver(host)->unique_received());
  }
  return out;
}

/// Hand-wires the same scenario the way the benches do, in the compiler's
/// canonical order: topology, metrics, apps, source, subscriptions, start,
/// move.
RunOutput run_hand_wired(StrategyOptions strategy, Time horizon,
                         const std::string& mover, int move_to_link,
                         Time move_at) {
  Figure1 f = build_figure1(/*seed=*/1, WorldConfig{}, strategy);
  std::vector<TraceRecord> records;
  f.world->net().trace().set_sink(Trace::recorder(records));

  Address group = Figure1::group();
  McastMetrics metrics(f.world->net(), f.world->routing(), group, kPort);
  GroupReceiverApp app1(*f.recv1->stack, kPort);
  GroupReceiverApp app2(*f.recv2->stack, kPort);
  GroupReceiverApp app3(*f.recv3->stack, kPort);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64, f.sender->node->domain());
  f.recv1->service->subscribe(group);
  f.recv2->service->subscribe(group);
  f.recv3->service->subscribe(group);
  source.start(Time::sec(1));
  if (!mover.empty()) {
    MobileNode* mn = f.world->host_by_name(mover).mn;
    Link* to = &f.link(move_to_link);
    f.world->scheduler().schedule_at(move_at, [mn, to] { mn->move_to(*to); });
  }
  f.world->run_until(horizon);

  RunOutput out;
  out.trace = trace_str(records);
  out.counters = f.world->net().counters().snapshot();
  out.delivered = {app1.unique_received(), app2.unique_received(),
                   app3.unique_received()};
  return out;
}

void expect_parity(const RunOutput& compiled, const RunOutput& hand) {
  EXPECT_GT(compiled.trace.size(), 0u);
  EXPECT_EQ(compiled.trace, hand.trace);
  EXPECT_EQ(compiled.counters, hand.counters);
  EXPECT_EQ(compiled.delivered, hand.delivered);
  EXPECT_GT(compiled.delivered[0], 0u);
}

TEST(ScenarioRoundTrip, Fig1TreeMatchesHandWired) {
  const Time horizon = Time::sec(20);
  expect_parity(run_compiled("fig1_tree.json", horizon),
                run_hand_wired({}, horizon, "", 0, Time::zero()));
}

TEST(ScenarioRoundTrip, Fig2ReceiverLocalMatchesHandWired) {
  const Time horizon = Time::sec(45);
  expect_parity(
      run_compiled("fig2_receiver_local.json", horizon),
      run_hand_wired({McastStrategy::kLocalMembership,
                      HaRegistration::kGroupListBu},
                     horizon, "Receiver3", 6, Time::sec(30)));
}

TEST(ScenarioRoundTrip, Fig3ReceiverTunnelMatchesHandWired) {
  const Time horizon = Time::sec(45);
  expect_parity(
      run_compiled("fig3_receiver_tunnel.json", horizon),
      run_hand_wired({McastStrategy::kBidirTunnel,
                      HaRegistration::kGroupListBu},
                     horizon, "Receiver3", 1, Time::sec(30)));
}

TEST(ScenarioRoundTrip, Fig4SenderTunnelMatchesHandWired) {
  const Time horizon = Time::sec(45);
  expect_parity(
      run_compiled("fig4_sender_tunnel.json", horizon),
      run_hand_wired({McastStrategy::kBidirTunnel,
                      HaRegistration::kGroupListBu},
                     horizon, "SenderS", 6, Time::sec(30)));
}

TEST(ScenarioRoundTrip, RunScenarioIsDeterministicAcrossThreads) {
  ScenarioSpec spec = ScenarioSpec::load_file(
      std::string(MIP6_SCENARIO_DIR) + "/quickstart.json");
  auto body = [&spec](std::uint64_t seed) {
    return run_scenario(spec, seed, Time::sec(15));
  };
  ReplicationOptions opts;
  opts.replications = 4;
  opts.base_seed = 42;
  opts.threads = 1;
  auto serial = run_replications(opts, body);
  opts.threads = 4;
  auto parallel = run_replications(opts, body);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, summary] : serial) {
    ASSERT_TRUE(parallel.contains(name)) << name;
    EXPECT_DOUBLE_EQ(summary.mean(), parallel.at(name).mean()) << name;
    EXPECT_DOUBLE_EQ(summary.stddev(), parallel.at(name).stddev()) << name;
  }
}

TEST(ScenarioRoundTrip, CompilesRepeatedlyInOneProcess) {
  // World teardown must be deterministic enough that scenario sweeps can
  // loop without leaking handlers between iterations: same spec + seed =>
  // identical results on every pass.
  ScenarioSpec spec = ScenarioSpec::load_file(
      std::string(MIP6_SCENARIO_DIR) + "/fig1_tree.json");
  ReplicationResult first = run_scenario(spec, 1, Time::sec(10));
  for (int i = 0; i < 2; ++i) {
    ReplicationResult again = run_scenario(spec, 1, Time::sec(10));
    EXPECT_EQ(first, again);
  }
}

}  // namespace
}  // namespace mip6
