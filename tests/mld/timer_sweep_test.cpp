// Parameterized MLD timer sweeps — the testable core of the paper's
// Section 4.4: for every Query Interval, a silently departed listener must
// expire within the derived T_MLI, and a query-waiting joiner must be
// learned within T_Query + T_RespDel.
#include <gtest/gtest.h>

#include "core/world.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::77");

class QueryIntervalSweep : public ::testing::TestWithParam<int> {};

TEST_P(QueryIntervalSweep, LeaveDetectedWithinListenerInterval) {
  const int tq = GetParam();
  WorldConfig config;
  config.mld = MldConfig::with_query_interval(Time::sec(tq));
  World world(1, config);
  Link& lan = world.add_link("lan");
  NodeRuntime& r = world.add_router("R", {&lan});
  NodeRuntime& h = world.add_host("H", lan);
  world.finalize();

  h.mld_host->join(h.iface(), kGroup);
  world.run_until(Time::sec(5));
  ASSERT_TRUE(r.mld->has_listeners(r.iface_on(lan), kGroup)) << tq;

  // Silent departure at t=5: listener must be gone within T_MLI of the
  // *last report* — conservatively, T_MLI + one query cycle from now.
  h.node->iface(0).detach();
  Time bound = config.mld.multicast_listener_interval() + Time::sec(tq) +
               Time::sec(11);
  world.run_until(Time::sec(5) + bound);
  EXPECT_FALSE(r.mld->has_listeners(r.iface_on(lan), kGroup))
      << "T_Query=" << tq;
}

TEST_P(QueryIntervalSweep, QueryWaitingJoinerLearnedWithinBound) {
  const int tq = GetParam();
  WorldConfig config;
  config.mld = MldConfig::with_query_interval(Time::sec(tq));
  config.mld_host.unsolicited_reports = false;  // worst case
  World world(1, config);
  Link& lan = world.add_link("lan");
  NodeRuntime& r = world.add_router("R", {&lan});
  NodeRuntime& h = world.add_host("H", lan);
  world.finalize();

  // Join mid-cycle, far from startup queries.
  Time join_at = Time::sec(3 * tq) + Time::sec(tq / 2);
  world.run_until(join_at);
  h.mld_host->join(h.iface(), kGroup);
  // Paper bound: next Query within T_Query, response within T_RespDel.
  world.run_until(join_at + Time::sec(tq) + Time::sec(10) + Time::sec(1));
  EXPECT_TRUE(r.mld->has_listeners(r.iface_on(lan), kGroup))
      << "T_Query=" << tq;
}

INSTANTIATE_TEST_SUITE_P(TQuery, QueryIntervalSweep,
                         ::testing::Values(10, 25, 60, 125),
                         [](const ::testing::TestParamInfo<int>& pi) {
                           return "tq" + std::to_string(pi.param);
                         });

}  // namespace
}  // namespace mip6
