// MLD router/host protocol behaviour on a single LAN: querier election,
// listener learning and expiry, Done handling with last-listener queries,
// report suppression, and the join-delay difference between unsolicited
// reports and query-waiting that the paper's Section 4.4 turns on.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/world.hpp"
#include "sim/trace.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::77");

struct Lan {
  World world;
  Link& lan;
  NodeRuntime& router;
  NodeRuntime& h1;
  NodeRuntime& h2;

  explicit Lan(WorldConfig config = {}, std::uint64_t seed = 1)
      : world(seed, config), lan(world.add_link("lan")),
        router(world.add_router("R", {&lan})),
        h1(world.add_host("H1", lan)), h2(world.add_host("H2", lan)) {
    world.finalize();
  }

  IfaceId riface() const { return router.iface_on(lan); }
  CounterRegistry& counters() { return world.net().counters(); }
};

TEST(MldProtocol, UnsolicitedReportCreatesListenerQuickly) {
  Lan t;
  t.world.run_until(Time::sec(1));
  EXPECT_FALSE(t.router.mld->has_listeners(t.riface(), kGroup));
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(2));
  EXPECT_TRUE(t.router.mld->has_listeners(t.riface(), kGroup));
  // Two unsolicited reports (RFC robustness).
  EXPECT_EQ(t.counters().get("mld/tx/report"), 1u);
  t.world.run_until(Time::sec(13));
  EXPECT_EQ(t.counters().get("mld/tx/report"), 2u);
}

TEST(MldProtocol, WithoutUnsolicitedReportsJoinWaitsForQuery) {
  WorldConfig config;
  config.mld_host.unsolicited_reports = false;
  Lan t(config);
  // Skip past the startup queries at t=0 and t=31.25; steady state then
  // queries every 125 s.
  t.world.run_until(Time::sec(40));
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(41));
  EXPECT_FALSE(t.router.mld->has_listeners(t.riface(), kGroup));
  // Next general query at t=125+31.25 (approx); listener learned within the
  // 10 s max response delay after it.
  t.world.run_until(Time::sec(170));
  EXPECT_TRUE(t.router.mld->has_listeners(t.riface(), kGroup));
}

TEST(MldProtocol, ListenerRefreshedByQueryResponses) {
  Lan t;
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  // Far beyond T_MLI: periodic query/report keeps the listener alive.
  t.world.run_until(Time::sec(900));
  EXPECT_TRUE(t.router.mld->has_listeners(t.riface(), kGroup));
}

TEST(MldProtocol, SilentDepartureExpiresAfterListenerInterval) {
  Lan t;
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(5));
  ASSERT_TRUE(t.router.mld->has_listeners(t.riface(), kGroup));

  // Host vanishes without a Done (moved away): detach at t=5.
  t.world.net().node_by_name("H1").iface(0).detach();
  t.h1.mld_host->cancel_pending(t.h1.iface());
  Time gone_at = t.world.now();

  // The listener must persist for a while (leave delay!) ...
  t.world.run_until(gone_at + Time::sec(100));
  EXPECT_TRUE(t.router.mld->has_listeners(t.riface(), kGroup));
  // ... and expire within T_MLI = 260 s of the last report.
  t.world.run_until(gone_at + Time::sec(261));
  EXPECT_FALSE(t.router.mld->has_listeners(t.riface(), kGroup));
  EXPECT_GE(t.counters().get("mld/listener-expired"), 1u);
}

TEST(MldProtocol, DoneTriggersFastLeaveViaLastListenerQuery) {
  Lan t;
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(5));
  ASSERT_TRUE(t.router.mld->has_listeners(t.riface(), kGroup));

  t.h1.mld_host->leave(t.h1.iface(), kGroup);
  EXPECT_EQ(t.counters().get("mld/tx/done"), 1u);
  // Last-listener queries (1 s interval, 2 queries) expire the state fast —
  // orders of magnitude below T_MLI.
  t.world.run_until(Time::sec(10));
  EXPECT_FALSE(t.router.mld->has_listeners(t.riface(), kGroup));
}

TEST(MldProtocol, DoneWithRemainingMemberKeepsState) {
  Lan t;
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.h2.mld_host->join(t.h2.iface(), kGroup);
  t.world.run_until(Time::sec(5));

  t.h1.mld_host->leave(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(20));
  // H2 answered the group-specific query; membership survives.
  EXPECT_TRUE(t.router.mld->has_listeners(t.riface(), kGroup));
}

TEST(MldProtocol, ReportSuppressionLimitsResponses) {
  WorldConfig config;
  config.mld_host.unsolicited_reports = false;
  Lan t(config);
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.h2.mld_host->join(t.h2.iface(), kGroup);
  // Run through several query cycles.
  t.world.run_until(Time::sec(600));
  std::uint64_t reports = t.counters().get("mld/tx/report");
  std::uint64_t queries = t.counters().get("mld/tx/query");
  ASSERT_GT(queries, 3u);
  // With perfect suppression there is ~1 report per query; allow 2 per
  // query for random-timer ties but catch the no-suppression case (2x).
  EXPECT_LE(reports, queries + 3);
  EXPECT_GT(t.counters().get("mld/report-suppressed"), 0u);
}

TEST(MldProtocol, QuerierElectionLowestAddressWins) {
  World world(1);
  Link& lan = world.add_link("lan");
  NodeRuntime& r1 = world.add_router("R1", {&lan});
  NodeRuntime& r2 = world.add_router("R2", {&lan});
  world.finalize();
  world.run_until(Time::sec(10));
  // R1 has the numerically lower link-local (iid from lower node id).
  EXPECT_TRUE(r1.mld->is_querier(r1.iface_on(lan)));
  EXPECT_FALSE(r2.mld->is_querier(r2.iface_on(lan)));
  EXPECT_GE(world.net().counters().get("mld/querier-resigned"), 1u);
}

TEST(MldProtocol, BackupQuerierTakesOverAfterSilence) {
  World world(1);
  Link& lan = world.add_link("lan");
  NodeRuntime& r1 = world.add_router("R1", {&lan});
  NodeRuntime& r2 = world.add_router("R2", {&lan});
  world.finalize();
  world.run_until(Time::sec(10));
  ASSERT_FALSE(r2.mld->is_querier(r2.iface_on(lan)));

  // R1 goes away (interface detaches): R2 must take over within the
  // Other-Querier-Present interval (255 s).
  r1.node->iface(0).detach();
  world.run_until(Time::sec(10) + Time::sec(256) + Time::sec(130));
  EXPECT_TRUE(r2.mld->is_querier(r2.iface_on(lan)));
}

TEST(MldProtocol, GroupsOnListsLearnedGroups) {
  Lan t;
  const Address g2 = Address::parse("ff1e::78");
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.h2.mld_host->join(t.h2.iface(), g2);
  t.world.run_until(Time::sec(5));
  auto groups = t.router.mld->groups_on(t.riface());
  EXPECT_EQ(groups.size(), 2u);
}

TEST(MldProtocol, TraceRecordsQueryReportDoneLifecycle) {
  Lan t;
  std::vector<TraceRecord> records;
  t.world.net().trace().set_sink(Trace::recorder(records));

  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(5));
  t.h1.mld_host->leave(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(10));

  auto find = [&](const char* event) {
    return std::find_if(records.begin(), records.end(),
                        [&](const TraceRecord& r) {
                          return r.component == "mld/R" && r.event == event;
                        });
  };
  EXPECT_NE(find("tx-query"), records.end());
  auto added = find("listener-added");
  ASSERT_NE(added, records.end());
  EXPECT_NE(added->detail.find(kGroup.str()), std::string::npos);
  auto done = find("rx-done");
  ASSERT_NE(done, records.end());
  EXPECT_NE(done->detail.find(kGroup.str()), std::string::npos);
  EXPECT_NE(find("listener-expired"), records.end());
}

TEST(MldProtocol, GroupCallbackFiresOnAddAndExpiry) {
  Lan t;
  // The PIM router already consumes the callback; re-install to observe.
  std::vector<std::pair<Address, bool>> events;
  t.router.mld->set_group_callback(
      [&](IfaceId, const Address& g, bool present) {
        events.emplace_back(g, present);
      });
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(5));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].second);
  t.world.net().node_by_name("H1").iface(0).detach();
  t.world.run_until(Time::sec(300));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[1].second);
}

}  // namespace
}  // namespace mip6
