#include "mld/messages.hpp"

#include <gtest/gtest.h>

#include "mld/config.hpp"

namespace mip6 {
namespace {

TEST(MldMessages, QueryRoundTrip) {
  MldMessage q;
  q.type = MldType::kQuery;
  q.max_response_delay_ms = 10000;
  q.group = Address();  // general query
  Icmpv6Message icmp = q.to_icmpv6();
  EXPECT_EQ(icmp.type, 130);
  EXPECT_EQ(icmp.body.size(), 20u);
  MldMessage back = MldMessage::from_icmpv6(icmp);
  EXPECT_EQ(back.type, MldType::kQuery);
  EXPECT_EQ(back.max_response_delay_ms, 10000);
  EXPECT_TRUE(back.is_general_query());
}

TEST(MldMessages, GroupSpecificQuery) {
  MldMessage q;
  q.type = MldType::kQuery;
  q.max_response_delay_ms = 1000;
  q.group = Address::parse("ff1e::1");
  MldMessage back = MldMessage::from_icmpv6(q.to_icmpv6());
  EXPECT_FALSE(back.is_general_query());
  EXPECT_EQ(back.group, q.group);
}

TEST(MldMessages, ReportAndDoneRoundTrip) {
  for (MldType type : {MldType::kReport, MldType::kDone}) {
    MldMessage m;
    m.type = type;
    m.group = Address::parse("ff1e::42");
    MldMessage back = MldMessage::from_icmpv6(m.to_icmpv6());
    EXPECT_EQ(back.type, type);
    EXPECT_EQ(back.group, m.group);
  }
}

TEST(MldMessages, RejectsNonMldType) {
  Icmpv6Message icmp;
  icmp.type = 128;  // echo request
  icmp.body = Bytes(20);
  EXPECT_THROW(MldMessage::from_icmpv6(icmp), ParseError);
}

TEST(MldMessages, RejectsTruncatedBody) {
  MldMessage m;
  m.type = MldType::kReport;
  m.group = Address::parse("ff1e::1");
  Icmpv6Message icmp = m.to_icmpv6();
  icmp.body.resize(19);
  EXPECT_THROW(MldMessage::from_icmpv6(icmp), ParseError);
}

TEST(MldMessages, RejectsTrailingBytes) {
  MldMessage m;
  m.type = MldType::kReport;
  m.group = Address::parse("ff1e::1");
  Icmpv6Message icmp = m.to_icmpv6();
  icmp.body.push_back(0);
  EXPECT_THROW(MldMessage::from_icmpv6(icmp), ParseError);
}

TEST(MldMessages, ReportWithoutGroupRejected) {
  MldMessage m;
  m.type = MldType::kReport;
  m.group = Address();  // unspecified: invalid for report/done
  EXPECT_THROW(MldMessage::from_icmpv6(m.to_icmpv6()), ParseError);
}

TEST(MldConfig, DerivedIntervalsMatchRfcDefaults) {
  MldConfig c;
  EXPECT_EQ(c.query_interval, Time::sec(125));
  EXPECT_EQ(c.query_response_interval, Time::sec(10));
  // T_MLI = 2*125 + 10 = 260 s, the paper's headline number.
  EXPECT_EQ(c.multicast_listener_interval(), Time::sec(260));
  EXPECT_EQ(c.other_querier_present_interval(), Time::sec(255));
}

TEST(MldConfig, WithQueryIntervalClampsToResponseDelay) {
  MldConfig c = MldConfig::with_query_interval(Time::sec(25));
  EXPECT_EQ(c.query_interval, Time::sec(25));
  EXPECT_EQ(c.multicast_listener_interval(), Time::sec(60));
  // Footnote 5: T_Query must not go below the Maximum Response Delay.
  MldConfig tight = MldConfig::with_query_interval(Time::sec(2));
  EXPECT_EQ(tight.query_interval, Time::sec(10));
}

}  // namespace
}  // namespace mip6
