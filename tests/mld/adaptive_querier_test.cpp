// Adaptive querier extension: the querier speeds up when mobile-host churn
// appears on a link and decays back to the default interval when quiet —
// the self-tuning version of the paper's Section 4.4 recommendation.
#include <gtest/gtest.h>

#include "core/world.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::70");

struct Lan {
  World world;
  Link& lan;
  Link& other;
  NodeRuntime& router;
  NodeRuntime& h1;

  explicit Lan(bool adaptive)
      : world(1,
              [&] {
                WorldConfig c;
                c.mld.adaptive_querier = adaptive;
                c.mld.adaptive_min_interval = Time::sec(10);
                c.mld.adaptive_window = Time::sec(250);
                c.mld.adaptive_churn_threshold = 2;
                return c;
              }()),
        lan(world.add_link("lan")), other(world.add_link("other")),
        router(world.add_router("R", {&lan, &other})),
        h1(world.add_host("H1", lan)) {
    world.finalize();
  }

  IfaceId riface() const { return router.iface_on(lan); }
};

TEST(AdaptiveQuerier, DisabledUsesConfiguredInterval) {
  Lan t(false);
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.world.net().node_by_name("H1").iface(0).detach();  // churn
  t.world.run_until(Time::sec(300));
  EXPECT_EQ(t.router.mld->effective_query_interval(t.riface()),
            Time::sec(125));
}

TEST(AdaptiveQuerier, ChurnAcceleratesQueries) {
  Lan t(true);
  EXPECT_EQ(t.router.mld->effective_query_interval(t.riface()),
            Time::sec(125));
  // Two churn events close together: a join (listener added) and an
  // explicit leave (Done -> last-listener queries -> fast expiry).
  t.world.run_until(Time::sec(20));
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(30));
  t.h1.mld_host->leave(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(40));  // fast leave expired the listener
  EXPECT_EQ(t.router.mld->effective_query_interval(t.riface()),
            Time::sec(10));

  // Accelerated querying is visible on the wire.
  std::uint64_t queries_at_40 = t.world.net().counters().get("mld/tx/query");
  t.world.run_until(Time::sec(140));
  std::uint64_t in_accelerated_phase =
      t.world.net().counters().get("mld/tx/query") - queries_at_40;
  EXPECT_GE(in_accelerated_phase, 8u);  // ~10 per 100 s at the 10 s interval
}

TEST(AdaptiveQuerier, DecaysBackWhenQuiet) {
  Lan t(true);
  t.world.run_until(Time::sec(20));
  t.h1.mld_host->join(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(30));
  t.h1.mld_host->leave(t.h1.iface(), kGroup);
  t.world.run_until(Time::sec(40));
  ASSERT_EQ(t.router.mld->effective_query_interval(t.riface()),
            Time::sec(10));
  // No further churn: events age out of the 250 s window.
  t.world.run_until(Time::sec(400));
  EXPECT_EQ(t.router.mld->effective_query_interval(t.riface()),
            Time::sec(125));
}

TEST(AdaptiveQuerier, MobileChurnAcceleratesWithoutManualTuning) {
  // The end-to-end payoff: a mobile receiver bouncing between links with
  // dwell times longer than T_MLI leaves the leave-delay expiry + rejoin
  // signature on each link; the querier adapts on its own, sending far
  // more queries during the churny phases than the fixed-interval
  // baseline — without anyone editing router configuration.
  auto run = [](bool adaptive) {
    WorldConfig config;
    config.mld.adaptive_querier = adaptive;
    config.mld.adaptive_min_interval = Time::sec(10);
    World world(7, config);
    Link& l1 = world.add_link("L1");
    Link& l2 = world.add_link("L2");
    world.add_router("R", {&l1, &l2});
    NodeRuntime& h = world.add_host("H", l1);
    world.finalize();
    h.service->subscribe(kGroup);
    for (int i = 1; i <= 4; ++i) {
      Link& target = (i % 2 == 1) ? l2 : l1;
      world.scheduler().schedule_at(Time::sec(i * 300), [&h, &target] {
        h.mn->move_to(target);
      });
    }
    world.run_until(Time::sec(1250));
    return world.net().counters().get("mld/tx/query");
  };
  std::uint64_t fixed = run(false);
  std::uint64_t adaptive = run(true);
  // Fixed: ~2 ifaces * 1250/125 = ~22 queries. Adaptive: bursts at the
  // 10 s interval after every expiry+rejoin pair.
  EXPECT_GT(adaptive, fixed * 2);
}

}  // namespace
}  // namespace mip6
