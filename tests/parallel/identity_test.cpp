// Serial/parallel identity: the windowed parallel scheduler's one
// non-negotiable contract is that the thread count is a speed knob, not a
// semantics knob. Every shipped Figure 1-4 scenario and every committed
// chaos reproducer must produce byte-identical traces, counters, delivery
// counts, and executed-event totals at --threads 1, 2, and 8. Any diff
// here means a provenance-ordering or shard-isolation bug in the
// scheduler, partitioner, or a protocol module scheduling onto the wrong
// domain — fix that, never the expectation.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "fault/search.hpp"
#include "scenario/compile.hpp"

#ifndef MIP6_SCENARIO_DIR
#error "MIP6_SCENARIO_DIR must point at examples/scenarios"
#endif
#ifndef MIP6_FAULT_CORPUS_DIR
#error "MIP6_FAULT_CORPUS_DIR must point at tests/fault/corpus"
#endif

namespace mip6 {
namespace {

constexpr std::uint32_t kThreadCounts[] = {2, 8};

struct RunOutput {
  std::string trace;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> delivered;
  std::uint64_t executed = 0;
};

/// Compiles and runs a shipped scenario at the given thread count,
/// capturing everything observable.
RunOutput run_figure(const std::string& file, std::uint32_t threads) {
  ScenarioSpec spec =
      ScenarioSpec::load_file(std::string(MIP6_SCENARIO_DIR) + "/" + file);
  spec.threads = threads;
  std::vector<TraceRecord> records;
  CompiledScenario c = compile_scenario(spec, spec.seed, [&records](World& w) {
    w.net().trace().set_sink(Trace::recorder(records));
  });
  c.world->run_until(spec.duration);
  RunOutput out;
  for (const TraceRecord& r : records) out.trace += r.str() + "\n";
  out.counters = c.world->net().counters().snapshot();
  for (const CompiledScenario::Receiver& rec : c.receivers) {
    out.delivered.emplace_back(rec.host, rec.app->unique_received());
  }
  out.executed = c.world->scheduler().executed_events();
  c.world->stop();
  return out;
}

void expect_identical(const RunOutput& serial, const RunOutput& parallel,
                      std::uint32_t threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_GT(serial.trace.size(), 0u);
  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_EQ(serial.delivered, parallel.delivered);
  EXPECT_EQ(serial.executed, parallel.executed);
}

class FigureIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(FigureIdentity, TraceCountersAndDeliveryMatchSerial) {
  const std::string file = GetParam();
  RunOutput serial = run_figure(file, 1);
  for (std::uint32_t threads : kThreadCounts) {
    expect_identical(serial, run_figure(file, threads), threads);
  }
}

INSTANTIATE_TEST_SUITE_P(Figures, FigureIdentity,
                         ::testing::Values("fig1_tree.json",
                                           "fig2_receiver_local.json",
                                           "fig3_receiver_tunnel.json",
                                           "fig4_sender_tunnel.json"),
                         [](const ::testing::TestParamInfo<const char*>& pi) {
                           std::string n = pi.param;
                           return n.substr(0, n.find('_'));
                         });

// --- Chaos reproducers under parallel execution -----------------------------
//
// Fault plans stress exactly the paths sharding can get wrong: structural
// link flaps and node crashes interleaved with in-flight shard traffic,
// auditor sampling across shards, and recovery re-floods. Each committed
// reproducer must replay to its recorded trace at every thread count.

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(MIP6_FAULT_CORPUS_DIR)) {
    if (entry.path().extension() == ".json")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

ChaosRunResult replay_at(const std::string& path, std::uint32_t threads) {
  ChaosReproducer repro = ChaosReproducer::load_file(path);
  ScenarioSpec spec = ScenarioSpec::load_file(std::string(MIP6_SCENARIO_DIR) +
                                              "/" + repro.scenario);
  spec.threads = threads;
  return replay_reproducer(spec, repro);
}

class CorpusIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusIdentity, ReplaysByteExactAtEveryThreadCount) {
  const std::string path = GetParam();
  ChaosReproducer repro = ChaosReproducer::load_file(path);
  ChaosRunResult serial = replay_at(path, 1);
  // The serial replay anchors against the recorded capture...
  EXPECT_EQ(serial.trace, repro.trace);
  EXPECT_EQ(serial.classes(), repro.classes);
  // ...and every parallel replay must be indistinguishable from it.
  for (std::uint32_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ChaosRunResult parallel = replay_at(path, threads);
    EXPECT_EQ(serial.trace, parallel.trace);
    EXPECT_EQ(serial.classes(), parallel.classes());
    EXPECT_EQ(serial.delivered_total, parallel.delivered_total);
    EXPECT_EQ(serial.executed_events, parallel.executed_events);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusIdentity,
                         ::testing::ValuesIn(corpus_files()),
                         [](const ::testing::TestParamInfo<std::string>& pi) {
                           std::filesystem::path p(pi.param);
                           std::string n = p.stem().string();
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

}  // namespace
}  // namespace mip6
