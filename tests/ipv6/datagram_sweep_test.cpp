// Parameterized wire-format sweeps: datagram round trips across payload
// sizes × option combinations, and tunnel nesting depths.
#include <gtest/gtest.h>

#include <tuple>

#include "ipv6/datagram.hpp"
#include "ipv6/tunnel.hpp"
#include "mipv6/messages.hpp"

namespace mip6 {
namespace {

class DatagramSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DatagramSweep, RoundTripsExactly) {
  const auto [payload_size, option_combo] = GetParam();
  DatagramSpec spec;
  spec.src = Address::parse("2001:db8:1::1");
  spec.dst = Address::parse("2001:db8:2::2");
  spec.hop_limit = 77;
  spec.protocol = proto::kUdp;
  spec.payload.resize(payload_size);
  for (int i = 0; i < payload_size; ++i) {
    spec.payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  if (option_combo & 1) {
    spec.dest_options.push_back(
        HomeAddressOption{Address::parse("2001:db8:4::99")}.encode());
  }
  if (option_combo & 2) {
    BindingUpdateOption bu;
    bu.home_registration = true;
    bu.sequence = 9;
    bu.lifetime_s = 100;
    spec.dest_options.push_back(bu.encode());
  }
  if (option_combo & 4) {
    MulticastGroupListSubOption list;
    list.groups.push_back(Address::parse("ff1e::1"));
    BindingUpdateOption bu;
    bu.home_registration = true;
    bu.sub_options.push_back(list.encode());
    spec.dest_options.push_back(bu.encode());
  }

  Bytes wire = build_datagram(spec);
  ParsedDatagram d = parse_datagram(wire);
  EXPECT_EQ(d.hdr.src, spec.src);
  EXPECT_EQ(d.hdr.dst, spec.dst);
  EXPECT_EQ(d.hdr.hop_limit, 77);
  EXPECT_EQ(d.protocol, proto::kUdp);
  EXPECT_EQ(Bytes(d.payload.begin(), d.payload.end()), spec.payload);
  EXPECT_EQ(d.dest_options.size(), spec.dest_options.size());
  // Effective source honours a Home Address option.
  if (option_combo & 1) {
    EXPECT_EQ(d.effective_src, Address::parse("2001:db8:4::99"));
  } else {
    EXPECT_EQ(d.effective_src, spec.src);
  }
  // Re-serializing the parse result gives identical octets.
  DatagramSpec again;
  again.src = d.hdr.src;
  again.dst = d.hdr.dst;
  again.hop_limit = d.hdr.hop_limit;
  again.dest_options = d.dest_options;
  again.protocol = d.protocol;
  again.payload.assign(d.payload.begin(), d.payload.end());
  EXPECT_EQ(build_datagram(again), wire);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndOptions, DatagramSweep,
    ::testing::Combine(::testing::Values(0, 1, 7, 8, 64, 512, 1400),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& pi) {
      return "p" + std::to_string(std::get<0>(pi.param)) + "_o" +
             std::to_string(std::get<1>(pi.param));
    });

class TunnelDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(TunnelDepthSweep, NestedEncapsulationUnwinds) {
  const int depth = GetParam();
  DatagramSpec inner_spec;
  inner_spec.src = Address::parse("2001:db8:1::9");
  inner_spec.dst = Address::parse("ff1e::1");
  inner_spec.protocol = proto::kNoNext;
  Bytes wire = build_datagram(inner_spec);
  const Bytes original = wire;
  for (int i = 0; i < depth; ++i) {
    wire = encapsulate(
        wire, Address::from_prefix_iid(Address::parse("2001:db8::"), i + 1),
        Address::from_prefix_iid(Address::parse("2001:db8::"), i + 100));
  }
  EXPECT_EQ(wire.size(), original.size() + depth * kTunnelOverhead);
  for (int i = 0; i < depth; ++i) {
    wire = decapsulate(parse_datagram(wire));
  }
  EXPECT_EQ(wire, original);
}

INSTANTIATE_TEST_SUITE_P(Depths, TunnelDepthSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace mip6
