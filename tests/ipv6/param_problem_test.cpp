// ICMPv6 Parameter Problem origination (RFC 2463 §3.4 / RFC 2460 §4.2):
// the two high-order bits of an unrecognized destination option's type
// select skip / discard / discard+report, and an unrecognized final Next
// Header earns a code-1 report pointing at the selecting octet.
#include <gtest/gtest.h>

#include <optional>

#include "ipv6/datagram.hpp"
#include "ipv6/global_routing.hpp"
#include "ipv6/icmpv6.hpp"
#include "ipv6/stack.hpp"

namespace mip6 {
namespace {

// hostA -- lan -- hostB, single link, default router unset (on-link only).
struct OneLan {
  Network net{3};
  AddressingPlan plan;
  Link& lan;
  Node& a_node;
  Node& b_node;
  std::unique_ptr<Ipv6Stack> a;
  std::unique_ptr<Ipv6Stack> b;
  GlobalRouting routing{net, plan};

  // Last Parameter Problem delivered to hostA.
  std::optional<Icmpv6Message> reported;

  OneLan()
      : lan(net.add_link("lan", Time::us(10))),
        a_node(net.add_node("hostA")),
        b_node(net.add_node("hostB")) {
    plan.set_link_prefix(lan.id(), Prefix::parse("2001:db8:1::/64"));
    a_node.add_interface().attach(lan);
    b_node.add_interface().attach(lan);
    a = std::make_unique<Ipv6Stack>(a_node, plan, false);
    b = std::make_unique<Ipv6Stack>(b_node, plan, false);
    routing.register_stack(*a);
    routing.register_stack(*b);
    routing.recompute();
    a->set_proto_handler(
        proto::kIcmpv6,
        [this](const ParsedDatagram& d, const Packet&, IfaceId) {
          auto msg = Icmpv6Message::try_parse(d.payload, d.hdr.src, d.hdr.dst);
          ASSERT_TRUE(msg.ok());
          if (msg.value().type == icmpv6::kParamProblem) {
            reported = msg.value();
          }
        });
  }

  IfaceId a_iface() const { return a_node.iface(0).id(); }
  IfaceId b_iface() const { return b_node.iface(0).id(); }

  /// Sends a datagram from A to B carrying one destination option.
  void send_with_option(std::uint8_t opt_type) {
    DatagramSpec spec;
    spec.src = a->global_address(a_iface());
    spec.dst = b->global_address(b_iface());
    spec.dest_options.push_back(DestOption{opt_type, Bytes(4, 0xee), 0});
    ASSERT_TRUE(a->send(spec));
    net.scheduler().run();
  }

  std::uint32_t reported_pointer() const {
    if (!reported || reported->body.size() < 4) return 0xffffffff;
    const Bytes& b4 = reported->body;
    return (std::uint32_t(b4[0]) << 24) | (std::uint32_t(b4[1]) << 16) |
           (std::uint32_t(b4[2]) << 8) | std::uint32_t(b4[3]);
  }
};

TEST(ParamProblem, SkipActionDeliversWithoutReport) {
  OneLan t;
  bool delivered = false;
  t.b->set_proto_handler(proto::kNoNext,
                         [&](const ParsedDatagram&, const Packet&, IfaceId) {
                           delivered = true;
                         });
  t.send_with_option(0x3e);  // action bits 00: skip
  EXPECT_TRUE(delivered);
  EXPECT_FALSE(t.reported.has_value());
  EXPECT_EQ(t.net.counters().get("icmpv6/tx/param-problem"), 0u);
}

TEST(ParamProblem, DiscardActionStaysSilent) {
  OneLan t;
  t.send_with_option(0x7e);  // action bits 01: silent discard
  EXPECT_FALSE(t.reported.has_value());
  EXPECT_EQ(t.net.counters().get("ipv6/rx-drop/unrecognized-option"), 1u);
  EXPECT_EQ(t.net.counters().get("icmpv6/tx/param-problem"), 0u);
}

TEST(ParamProblem, ReportActionSendsCode2PointingAtOption) {
  OneLan t;
  t.send_with_option(0xbe);  // action bits 10: discard + report
  ASSERT_TRUE(t.reported.has_value());
  EXPECT_EQ(t.reported->code, icmpv6::kCodeUnrecognizedOption);
  // Fixed header (40) + dest-opts next-header/length (2) = first option's
  // type octet.
  EXPECT_EQ(t.reported_pointer(), 42u);
  EXPECT_EQ(t.net.counters().get("icmpv6/tx/param-problem"), 1u);
  // The invoking datagram rides along after the 4-octet pointer.
  EXPECT_GT(t.reported->body.size(), 4u + 40u);
}

TEST(ParamProblem, ReportUnlessMulticastSuppressedForGroupDst) {
  OneLan t;
  const Address group = Address::parse("ff1e::99");
  t.b->join_local_group(t.b_iface(), group);
  DatagramSpec spec;
  spec.src = t.a->global_address(t.a_iface());
  spec.dst = group;
  spec.hop_limit = 1;
  spec.dest_options.push_back(DestOption{0xfe, Bytes(4, 0xee), 0});
  ASSERT_TRUE(t.a->send_on_iface(t.a_iface(), spec));
  t.net.scheduler().run();
  // Action bits 11: dropped, but no report because the destination was
  // multicast.
  EXPECT_EQ(t.net.counters().get("ipv6/rx-drop/unrecognized-option"), 1u);
  EXPECT_FALSE(t.reported.has_value());
  EXPECT_EQ(t.net.counters().get("icmpv6/tx/param-problem"), 0u);
}

TEST(ParamProblem, UnknownNextHeaderSendsCode1) {
  OneLan t;
  DatagramSpec spec;
  spec.src = t.a->global_address(t.a_iface());
  spec.dst = t.b->global_address(t.b_iface());
  spec.protocol = 200;  // no handler registered
  spec.payload = Bytes(8, 0x42);
  ASSERT_TRUE(t.a->send(spec));
  t.net.scheduler().run();
  ASSERT_TRUE(t.reported.has_value());
  EXPECT_EQ(t.reported->code, icmpv6::kCodeUnrecognizedNextHeader);
  // No extension headers: the selecting Next Header octet is fixed-header
  // offset 6.
  EXPECT_EQ(t.reported_pointer(), 6u);
}

TEST(ParamProblem, MobilityOptionsAreExemptWithoutHandlers) {
  OneLan t;
  // Hosts with no mobility handlers must not Parameter-Problem the mobility
  // options themselves (opt::kBindingUpdate carries action bits 11).
  t.send_with_option(opt::kBindingUpdate);
  EXPECT_FALSE(t.reported.has_value());
  EXPECT_EQ(t.net.counters().get("icmpv6/tx/param-problem"), 0u);
}

TEST(ParamProblem, NeverRepliesToUnreplyableSource) {
  OneLan t;
  DatagramSpec spec;
  spec.src = Address();  // unspecified
  spec.dst = t.b->global_address(t.b_iface());
  spec.dest_options.push_back(DestOption{0xbe, Bytes(4, 0xee), 0});
  t.b->receive_as_if(t.b_iface(), build_datagram(spec));
  spec.src = Address::parse("ff02::1");  // multicast source
  t.b->receive_as_if(t.b_iface(), build_datagram(spec));
  t.net.scheduler().run();
  EXPECT_EQ(t.net.counters().get("ipv6/rx-drop/unrecognized-option"), 2u);
  EXPECT_EQ(t.net.counters().get("icmpv6/tx/param-problem"), 0u);
}

}  // namespace
}  // namespace mip6
