// Wire-format tests: fixed header, destination options, whole datagrams,
// ICMPv6, UDP and RFC 2473 tunneling.
#include <gtest/gtest.h>

#include "ipv6/datagram.hpp"
#include "ipv6/header.hpp"
#include "ipv6/icmpv6.hpp"
#include "ipv6/tunnel.hpp"
#include "ipv6/udp.hpp"
#include "sim/rng.hpp"

namespace mip6 {
namespace {

TEST(Ipv6Header, RoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0xab;
  h.flow_label = 0xcdef1;
  h.payload_length = 1234;
  h.next_header = proto::kUdp;
  h.hop_limit = 17;
  h.src = Address::parse("2001:db8::1");
  h.dst = Address::parse("ff1e::1");
  BufferWriter w;
  h.write(w);
  EXPECT_EQ(w.size(), Ipv6Header::kSize);
  BufferReader r(w.bytes());
  Ipv6Header back = Ipv6Header::read(r);
  EXPECT_EQ(back.traffic_class, 0xab);
  EXPECT_EQ(back.flow_label, 0xcdef1u);
  EXPECT_EQ(back.payload_length, 1234);
  EXPECT_EQ(back.next_header, proto::kUdp);
  EXPECT_EQ(back.hop_limit, 17);
  EXPECT_EQ(back.src, h.src);
  EXPECT_EQ(back.dst, h.dst);
}

TEST(Ipv6Header, VersionFieldIsSix) {
  Ipv6Header h;
  BufferWriter w;
  h.write(w);
  EXPECT_EQ(w.bytes()[0] >> 4, 6);
}

TEST(Ipv6Header, RejectsWrongVersion) {
  Ipv6Header h;
  BufferWriter w;
  h.write(w);
  Bytes bad = w.bytes();
  bad[0] = 0x45;  // IPv4-looking version nibble
  BufferReader r(bad);
  EXPECT_THROW(Ipv6Header::read(r), ParseError);
}

TEST(DestOptions, PadsToEightOctets) {
  DestOptionsHeader h;
  h.next_header = proto::kNoNext;
  h.options.push_back(DestOption{opt::kHomeAddress, Bytes(16)});
  BufferWriter w;
  h.write(w);
  EXPECT_EQ(w.size() % 8, 0u);
  EXPECT_EQ(w.size(), h.wire_size());
  BufferReader r(w.bytes());
  DestOptionsHeader back = DestOptionsHeader::read(r);
  EXPECT_TRUE(r.empty());
  ASSERT_EQ(back.options.size(), 1u);
  EXPECT_EQ(back.options[0].type, opt::kHomeAddress);
  EXPECT_EQ(back.options[0].data.size(), 16u);
}

TEST(DestOptions, MultipleOptionsSurviveRoundTrip) {
  DestOptionsHeader h;
  h.next_header = proto::kUdp;
  h.options.push_back(DestOption{opt::kBindingUpdate, Bytes{1, 2, 3}});
  h.options.push_back(DestOption{opt::kHomeAddress, Bytes(16, 0xaa)});
  BufferWriter w;
  h.write(w);
  BufferReader r(w.bytes());
  DestOptionsHeader back = DestOptionsHeader::read(r);
  ASSERT_EQ(back.options.size(), 2u);
  EXPECT_EQ(back.next_header, proto::kUdp);
  EXPECT_NE(back.find(opt::kBindingUpdate), nullptr);
  EXPECT_NE(back.find(opt::kHomeAddress), nullptr);
  EXPECT_EQ(back.find(0x33), nullptr);
}

TEST(DestOptions, PaddingOptionsInvisibleAfterParse) {
  // An empty options header is 2 octets + 6 octets PadN.
  DestOptionsHeader h;
  h.next_header = proto::kNoNext;
  BufferWriter w;
  h.write(w);
  EXPECT_EQ(w.size(), 8u);
  BufferReader r(w.bytes());
  DestOptionsHeader back = DestOptionsHeader::read(r);
  EXPECT_TRUE(back.options.empty());
}

TEST(DestOptions, TruncatedHeaderThrows) {
  DestOptionsHeader h;
  h.next_header = proto::kNoNext;
  h.options.push_back(DestOption{opt::kHomeAddress, Bytes(16)});
  BufferWriter w;
  h.write(w);
  Bytes trunc(w.bytes().begin(), w.bytes().end() - 4);
  BufferReader r(trunc);
  EXPECT_THROW(DestOptionsHeader::read(r), ParseError);
}

TEST(Datagram, BuildParseNoOptions) {
  DatagramSpec spec;
  spec.src = Address::parse("2001:db8:1::1");
  spec.dst = Address::parse("2001:db8:2::2");
  spec.protocol = proto::kUdp;
  spec.payload = Bytes{9, 8, 7};
  Bytes wire = build_datagram(spec);
  ParsedDatagram d = parse_datagram(wire);
  EXPECT_EQ(d.hdr.src, spec.src);
  EXPECT_EQ(d.protocol, proto::kUdp);
  EXPECT_EQ(Bytes(d.payload.begin(), d.payload.end()), spec.payload);
  EXPECT_TRUE(d.dest_options.empty());
  EXPECT_EQ(d.effective_src, spec.src);
}

TEST(Datagram, HomeAddressOptionOverridesEffectiveSource) {
  Address home = Address::parse("2001:db8:4::99");
  DatagramSpec spec;
  spec.src = Address::parse("2001:db8:6::99");  // care-of
  spec.dst = Address::parse("2001:db8:1::1");
  spec.dest_options.push_back(
      DestOption{opt::kHomeAddress, Bytes(home.bytes().begin(),
                                          home.bytes().end())});
  spec.protocol = proto::kNoNext;
  Bytes wire = build_datagram(spec);
  ParsedDatagram d = parse_datagram(wire);
  EXPECT_EQ(d.hdr.src, spec.src);
  EXPECT_EQ(d.effective_src, home);
  EXPECT_TRUE(d.has_option(opt::kHomeAddress));
}

TEST(Datagram, PayloadLengthMismatchRejected) {
  DatagramSpec spec;
  spec.protocol = proto::kUdp;
  spec.payload = Bytes(10);
  Bytes wire = build_datagram(spec);
  wire.pop_back();
  EXPECT_THROW(parse_datagram(wire), ParseError);
  wire.push_back(0);
  wire.push_back(0);
  EXPECT_THROW(parse_datagram(wire), ParseError);
}

TEST(Datagram, MalformedHomeAddressOptionRejected) {
  DatagramSpec spec;
  spec.dest_options.push_back(DestOption{opt::kHomeAddress, Bytes(8)});
  spec.protocol = proto::kNoNext;
  Bytes wire = build_datagram(spec);
  EXPECT_THROW(parse_datagram(wire), ParseError);
}

TEST(Datagram, HopLimitDecrement) {
  DatagramSpec spec;
  spec.hop_limit = 2;
  spec.protocol = proto::kNoNext;
  Bytes wire = build_datagram(spec);
  EXPECT_TRUE(decrement_hop_limit(wire));
  EXPECT_EQ(parse_datagram(wire).hdr.hop_limit, 1);
  EXPECT_FALSE(decrement_hop_limit(wire));  // 1 -> must be discarded
  EXPECT_EQ(parse_datagram(wire).hdr.hop_limit, 1);
}

TEST(Datagram, FuzzedInputNeverCrashes) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.uniform_int(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      parse_datagram(junk);
    } catch (const ParseError&) {
      // expected for almost all inputs
    }
  }
}

TEST(Datagram, TruncationFuzzAlwaysThrows) {
  DatagramSpec spec;
  spec.src = Address::parse("2001:db8::1");
  spec.dst = Address::parse("2001:db8::2");
  spec.dest_options.push_back(DestOption{opt::kBindingUpdate, Bytes(8, 1)});
  spec.protocol = proto::kUdp;
  spec.payload = Bytes(20, 2);
  Bytes wire = build_datagram(spec);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes trunc(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_THROW(parse_datagram(trunc), ParseError) << "len=" << len;
  }
  EXPECT_NO_THROW(parse_datagram(wire));
}

TEST(Icmpv6, ChecksumRoundTrip) {
  Address src = Address::parse("fe80::1");
  Address dst = Address::parse("ff02::1");
  Icmpv6Message m;
  m.type = 130;
  m.code = 0;
  m.body = Bytes{1, 2, 3, 4};
  Bytes wire = m.serialize(src, dst);
  Icmpv6Message back = Icmpv6Message::parse(wire, src, dst);
  EXPECT_EQ(back.type, 130);
  EXPECT_EQ(back.body, m.body);
}

TEST(Icmpv6, ChecksumCoversPseudoHeader) {
  Address src = Address::parse("fe80::1");
  Address dst = Address::parse("ff02::1");
  Icmpv6Message m;
  m.type = 131;
  m.body = Bytes(20);
  Bytes wire = m.serialize(src, dst);
  // Same bytes with a different claimed source must fail verification.
  EXPECT_THROW(Icmpv6Message::parse(wire, Address::parse("fe80::2"), dst),
               ParseError);
}

TEST(Icmpv6, CorruptionDetected) {
  Address src = Address::parse("fe80::1");
  Address dst = Address::parse("ff02::1");
  Icmpv6Message m;
  m.type = 130;
  m.body = Bytes{5, 6, 7, 8};
  Bytes wire = m.serialize(src, dst);
  wire[5] ^= 0x10;
  EXPECT_THROW(Icmpv6Message::parse(wire, src, dst), ParseError);
}

TEST(Udp, RoundTripWithChecksum) {
  Address src = Address::parse("2001:db8::1");
  Address dst = Address::parse("ff1e::1");
  UdpDatagram u;
  u.src_port = 1234;
  u.dst_port = 9000;
  u.payload = Bytes{1, 1, 2, 3, 5, 8};
  Bytes wire = u.serialize(src, dst);
  EXPECT_EQ(wire.size(), UdpDatagram::kHeaderSize + 6);
  UdpDatagram back = UdpDatagram::parse(wire, src, dst);
  EXPECT_EQ(back.src_port, 1234);
  EXPECT_EQ(back.dst_port, 9000);
  EXPECT_EQ(back.payload, u.payload);
}

TEST(Udp, LengthFieldValidated) {
  Address src = Address::parse("2001:db8::1");
  Address dst = Address::parse("ff1e::1");
  UdpDatagram u;
  u.payload = Bytes(4);
  Bytes wire = u.serialize(src, dst);
  wire.push_back(0);  // trailing garbage breaks both checksum and length
  EXPECT_THROW(UdpDatagram::parse(wire, src, dst), ParseError);
}

TEST(Tunnel, EncapsulateDecapsulateRoundTrip) {
  DatagramSpec inner_spec;
  inner_spec.src = Address::parse("2001:db8:4::99");
  inner_spec.dst = Address::parse("ff1e::1");
  inner_spec.protocol = proto::kUdp;
  inner_spec.payload = Bytes{42};
  Bytes inner = build_datagram(inner_spec);

  Address ha = Address::parse("2001:db8:4::4");
  Address coa = Address::parse("2001:db8:6::99");
  Bytes outer = encapsulate(inner, ha, coa);
  EXPECT_EQ(outer.size(), inner.size() + kTunnelOverhead);

  ParsedDatagram parsed_outer = parse_datagram(outer);
  EXPECT_EQ(parsed_outer.hdr.src, ha);
  EXPECT_EQ(parsed_outer.hdr.dst, coa);
  EXPECT_EQ(parsed_outer.protocol, proto::kIpv6);
  Bytes back = decapsulate(parsed_outer);
  EXPECT_EQ(back, inner);
  ParsedDatagram parsed_inner = parse_datagram(back);
  EXPECT_EQ(parsed_inner.hdr.dst, inner_spec.dst);
}

TEST(Tunnel, DecapsulateRejectsNonTunnel) {
  DatagramSpec spec;
  spec.protocol = proto::kUdp;
  spec.payload = Bytes(12);
  ParsedDatagram d = parse_datagram(build_datagram(spec));
  EXPECT_THROW(decapsulate(d), ParseError);
}

TEST(Tunnel, DecapsulateRejectsGarbageInner) {
  DatagramSpec spec;
  spec.protocol = proto::kIpv6;
  spec.payload = Bytes{1, 2, 3};  // not a datagram
  ParsedDatagram d = parse_datagram(build_datagram(spec));
  EXPECT_THROW(decapsulate(d), ParseError);
}

TEST(Tunnel, NestedEncapsulation) {
  DatagramSpec inner_spec;
  inner_spec.protocol = proto::kNoNext;
  Bytes inner = build_datagram(inner_spec);
  Bytes mid = encapsulate(inner, Address::parse("::1"), Address::parse("::2"));
  Bytes outer = encapsulate(mid, Address::parse("::3"), Address::parse("::4"));
  ParsedDatagram po = parse_datagram(outer);
  Bytes back_mid = decapsulate(po);
  ParsedDatagram pm = parse_datagram(back_mid);
  Bytes back_inner = decapsulate(pm);
  EXPECT_EQ(back_inner, inner);
}

}  // namespace
}  // namespace mip6
