#include "ipv6/routing.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(Rib, LongestPrefixMatchWins) {
  Rib rib;
  rib.add(Route{Prefix::parse("2001:db8::/32"), 1, Address(), 5});
  rib.add(Route{Prefix::parse("2001:db8:5::/64"), 2, Address(), 5});
  const Route* r = rib.lookup(Address::parse("2001:db8:5::1"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->out_iface, 2u);
  r = rib.lookup(Address::parse("2001:db8:6::1"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->out_iface, 1u);
}

TEST(Rib, NoMatchReturnsNull) {
  Rib rib;
  rib.add(Route{Prefix::parse("2001:db8:1::/64"), 1, Address(), 1});
  EXPECT_EQ(rib.lookup(Address::parse("2001:db9::1")), nullptr);
}

TEST(Rib, EqualLengthTieBrokenByMetric) {
  Rib rib;
  rib.add(Route{Prefix::parse("2001:db8:1::/64"), 1,
                Address::parse("fe80::1"), 10});
  rib.add(Route{Prefix::parse("2001:db8:1::/64"), 2,
                Address::parse("fe80::2"), 3});
  const Route* r = rib.lookup(Address::parse("2001:db8:1::9"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->out_iface, 2u);
  EXPECT_EQ(r->metric, 3u);
}

TEST(Rib, DefaultRouteMatchesEverythingLast) {
  Rib rib;
  rib.set_default(7, Address::parse("2001:db8:1::1"));
  rib.add(Route{Prefix::parse("2001:db8:2::/64"), 3, Address(), 1});
  EXPECT_EQ(rib.lookup(Address::parse("abcd::1"))->out_iface, 7u);
  EXPECT_EQ(rib.lookup(Address::parse("2001:db8:2::1"))->out_iface, 3u);
}

TEST(Rib, SetDefaultReplaces) {
  Rib rib;
  rib.set_default(1, Address::parse("fe80::1"));
  rib.set_default(2, Address::parse("fe80::2"));
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.lookup(Address::parse("::9"))->out_iface, 2u);
}

TEST(Rib, RemovePrefixAndClear) {
  Rib rib;
  rib.add(Route{Prefix::parse("2001:db8:1::/64"), 1, Address(), 1});
  rib.add(Route{Prefix::parse("2001:db8:2::/64"), 2, Address(), 1});
  rib.remove_prefix(Prefix::parse("2001:db8:1::/64"));
  EXPECT_EQ(rib.size(), 1u);
  EXPECT_EQ(rib.lookup(Address::parse("2001:db8:1::5")), nullptr);
  rib.clear();
  EXPECT_EQ(rib.size(), 0u);
}

TEST(Rib, OnLinkFlag) {
  Route on_link{Prefix::parse("::/0"), 0, Address(), 0};
  EXPECT_TRUE(on_link.on_link());
  Route via{Prefix::parse("::/0"), 0, Address::parse("fe80::1"), 0};
  EXPECT_FALSE(via.on_link());
}

TEST(Rib, StrListsRoutes) {
  Rib rib;
  rib.add(Route{Prefix::parse("2001:db8:1::/64"), 4, Address(), 2});
  std::string s = rib.str();
  EXPECT_NE(s.find("2001:db8:1::/64"), std::string::npos);
  EXPECT_NE(s.find("if4"), std::string::npos);
  EXPECT_NE(s.find("on-link"), std::string::npos);
}

}  // namespace
}  // namespace mip6
