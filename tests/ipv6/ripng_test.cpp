// RIPng distance-vector routing: wire format, route propagation with
// metric accumulation, split horizon with poisoned reverse, route timeout
// and convergence after failures — and the headline: PIM-DM multicast
// running over RIPng-computed RPF state instead of the oracle.
#include "ipv6/ripng.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/traffic.hpp"
#include "core/world.hpp"

namespace mip6 {
namespace {

const Address kGroup = Address::parse("ff1e::40");
constexpr std::uint16_t kPort = 9000;

TEST(RipngMessages, PayloadRoundTrip) {
  std::vector<RipngRte> rtes{
      {Prefix::parse("2001:db8:1::/64"), 1},
      {Prefix::parse("2001:db8:2::/64"), 7},
      {Prefix::parse("::/0"), 16},
  };
  Bytes payload = ripng_response_payload(rtes);
  EXPECT_EQ(payload.size(), 4 + 3 * 20);
  auto back = parse_ripng_response(payload);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].prefix, rtes[0].prefix);
  EXPECT_EQ(back[1].metric, 7);
  EXPECT_EQ(back[2].metric, 16);
}

TEST(RipngMessages, ParseRejectsMalformed) {
  Bytes bad{1, 1, 0, 0};  // command=Request (unsupported)
  EXPECT_THROW(parse_ripng_response(bad), ParseError);
  Bytes trunc = ripng_response_payload({{Prefix::parse("::/0"), 1}});
  trunc.pop_back();
  EXPECT_THROW(parse_ripng_response(trunc), ParseError);
}

WorldConfig ripng_world_config() {
  WorldConfig config;
  config.unicast = UnicastRouting::kRipng;
  return config;
}

/// h0 -- L0 -- R0 -- L1 -- R1 -- L2 -- R2 -- L3 -- h1
struct Chain {
  World world{1, ripng_world_config()};
  Link& l0;
  Link& l1;
  Link& l2;
  Link& l3;
  NodeRuntime& r0;
  NodeRuntime& r1;
  NodeRuntime& r2;
  NodeRuntime& h0;
  NodeRuntime& h1;

  Chain()
      : l0(world.add_link("L0")), l1(world.add_link("L1")),
        l2(world.add_link("L2")), l3(world.add_link("L3")),
        r0(world.add_router("R0", {&l0, &l1})),
        r1(world.add_router("R1", {&l1, &l2})),
        r2(world.add_router("R2", {&l2, &l3})),
        h0(world.add_host("H0", l0)), h1(world.add_host("H1", l3)) {
    world.finalize();
  }
};

TEST(Ripng, RoutesPropagateWithMetricAccumulation) {
  Chain t;
  // Give it a few update cycles to converge across 3 hops.
  t.world.run_until(Time::sec(95));
  // R0 learned L3 (3 hops away: connected at R2=1, +1 per hop).
  EXPECT_EQ(t.r0.ripng->metric_of(Prefix::parse("2001:db8:4::/64")), 3);
  EXPECT_EQ(t.r1.ripng->metric_of(Prefix::parse("2001:db8:4::/64")), 2);
  EXPECT_EQ(t.r2.ripng->metric_of(Prefix::parse("2001:db8:4::/64")), 1);
  // And the RIB agrees.
  const Route* route =
      t.r0.stack->rib().lookup(Address::parse("2001:db8:4::1"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->metric, 3u);
  EXPECT_FALSE(route->on_link());
}

TEST(Ripng, EndToEndUnicastOverConvergedRoutes) {
  Chain t;
  t.world.run_until(Time::sec(95));
  int delivered = 0;
  GroupReceiverApp app(*t.h1.stack, kPort);  // reuses the UDP consumer
  (void)app;
  t.h1.stack->set_proto_handler(
      proto::kNoNext,
      [&](const ParsedDatagram&, const Packet&, IfaceId) { ++delivered; });
  DatagramSpec spec;
  spec.src = t.h0.stack->global_address(t.h0.iface());
  spec.dst = t.h1.stack->global_address(t.h1.iface());
  spec.protocol = proto::kNoNext;
  EXPECT_TRUE(t.h0.stack->send(spec));
  t.world.run_until(Time::sec(96));
  EXPECT_EQ(delivered, 1);
}

TEST(Ripng, SplitHorizonPreventsCountToInfinityBounce) {
  Chain t;
  t.world.run_until(Time::sec(95));
  // R2 vanishes. Without poisoned reverse, R0/R1 would bounce the L3 route
  // between each other, slowly counting to 16. With it, the route simply
  // times out (180 s) and is withdrawn.
  for (const auto& iface : t.r2.node->interfaces()) iface->detach();
  t.world.run_until(Time::sec(95) + Time::sec(200));
  EXPECT_EQ(t.r0.ripng->metric_of(Prefix::parse("2001:db8:4::/64")), 16);
  EXPECT_EQ(t.r0.stack->rib().lookup(Address::parse("2001:db8:4::1")),
            nullptr);
  EXPECT_GT(t.world.net().counters().get("ripng/route-expired"), 0u);
}

TEST(Ripng, ReconvergesToAlternatePathAfterFailure) {
  // Diamond: L-src -- A -- {top, bottom} -- D -- L-dst, with B on top and
  // C on bottom. Kill B; routes re-converge via C.
  WorldConfig config = ripng_world_config();
  World world(3, config);
  Link& lsrc = world.add_link("Lsrc");
  Link& top = world.add_link("Top");
  Link& bottom = world.add_link("Bottom");
  Link& ldst = world.add_link("Ldst");
  NodeRuntime& a = world.add_router("A", {&lsrc, &top, &bottom});
  NodeRuntime& b = world.add_router("B", {&top, &ldst});
  NodeRuntime& c = world.add_router("C", {&bottom, &ldst});
  world.add_host("H", lsrc);
  world.finalize();
  world.run_until(Time::sec(95));

  Prefix dst = world.plan().prefix_of(ldst.id());
  const Route* before_ptr = a.stack->rib().lookup(dst.network());
  ASSERT_NE(before_ptr, nullptr);
  const Route before = *before_ptr;  // lookup pointers don't survive churn
  EXPECT_EQ(before.metric, 2u);

  // Kill whichever router A currently routes through.
  NodeRuntime& victim = before.out_iface == a.iface_on(top) ? b : c;
  for (const auto& iface : victim.node->interfaces()) iface->detach();

  // Route via the victim times out after 180 s, then the alternative is
  // learned from the next periodic update.
  world.run_until(Time::sec(95) + Time::sec(220));
  const Route* after = a.stack->rib().lookup(dst.network());
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->metric, 2u);
  EXPECT_NE(after->out_iface, before.out_iface);
}

TEST(Ripng, MulticastRunsOverRipngRpf) {
  // The paper's protocol-independence point: the same PIM-DM engine works
  // unchanged over a real routing protocol.
  Chain t;
  GroupReceiverApp app(*t.h1.stack, kPort);
  t.h1.service->subscribe(kGroup);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.h0.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  // Start after RIPng has converged (a few 30 s update cycles).
  source.start(Time::sec(100));
  t.world.run_until(Time::sec(160));
  EXPECT_GT(app.unique_received(), 550u);

  // RPF interfaces come from RIPng-installed routes.
  const Address s = t.h0.mn->home_address();
  ASSERT_TRUE(t.r1.pim->has_entry(s, kGroup));
  const Route* rpf = t.r1.stack->rib().lookup(s);
  ASSERT_NE(rpf, nullptr);
  EXPECT_EQ(t.r1.pim->incoming(s, kGroup), rpf->out_iface);
  // Next hops learned from RIPng are link-local neighbor addresses.
  EXPECT_TRUE(rpf->next_hop.is_link_local_unicast());
}

TEST(Ripng, MulticastDuringConvergenceSelfHeals) {
  // Traffic started *before* RIPng converges is dropped (RPF failures),
  // then picks up on its own once routes exist.
  Chain t;
  GroupReceiverApp app(*t.h1.stack, kPort);
  t.h1.service->subscribe(kGroup);
  CbrSource source(
      t.world.scheduler(),
      [&](Bytes p) {
        t.h0.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::ms(200));
  t.world.run_until(Time::sec(120));
  EXPECT_GT(t.world.net().counters().get("pimdm/rpf-fail"), 0u);
  // Received steadily in the second minute.
  EXPECT_GT(app.received_in(Time::sec(60), Time::sec(120)), 550u);
}

}  // namespace
}  // namespace mip6
