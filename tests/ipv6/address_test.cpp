#include "ipv6/address.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(Address, ParseFullForm) {
  Address a = Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  EXPECT_EQ(a.str(), "2001:db8::1");
}

TEST(Address, ParseCompressedForms) {
  EXPECT_EQ(Address::parse("::").str(), "::");
  EXPECT_EQ(Address::parse("::1").str(), "::1");
  EXPECT_EQ(Address::parse("fe80::").str(), "fe80::");
  EXPECT_EQ(Address::parse("ff02::1:2").str(), "ff02::1:2");
  EXPECT_EQ(Address::parse("1:2:3:4:5:6:7:8").str(), "1:2:3:4:5:6:7:8");
}

TEST(Address, ZeroCompressionPicksLongestRun) {
  // Two zero runs: the longer one is compressed.
  Address a = Address::parse("1:0:0:2:0:0:0:3");
  EXPECT_EQ(a.str(), "1:0:0:2::3");
  // Equal-length runs: the first is chosen (either is valid; ours is fixed).
  Address b = Address::parse("1:0:0:2:3:0:0:4");
  EXPECT_EQ(b.str(), "1::2:3:0:0:4");
}

TEST(Address, SingleZeroGroupNotCompressed) {
  EXPECT_EQ(Address::parse("1:2:3:0:5:6:7:8").str(), "1:2:3:0:5:6:7:8");
}

TEST(Address, RoundTripThroughParse) {
  for (const char* text :
       {"::", "::1", "fe80::1", "2001:db8:1::2", "ff1e::1",
        "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", "1:0:0:2::3"}) {
    Address a = Address::parse(text);
    EXPECT_EQ(Address::parse(a.str()), a) << text;
  }
}

TEST(Address, ParseRejectsMalformed) {
  EXPECT_THROW(Address::parse(""), ParseError);
  EXPECT_THROW(Address::parse("1:2:3"), ParseError);
  EXPECT_THROW(Address::parse("1:2:3:4:5:6:7:8:9"), ParseError);
  EXPECT_THROW(Address::parse("::1::2"), ParseError);
  EXPECT_THROW(Address::parse("12345::"), ParseError);
  EXPECT_THROW(Address::parse("g::1"), ParseError);
  EXPECT_THROW(Address::parse("1:2:3:4:5:6:7::8"), ParseError);
}

TEST(Address, Classification) {
  EXPECT_TRUE(Address().is_unspecified());
  EXPECT_TRUE(Address::loopback().is_loopback());
  EXPECT_TRUE(Address::parse("ff02::1").is_multicast());
  EXPECT_TRUE(Address::parse("ff02::1").is_link_scope_multicast());
  EXPECT_FALSE(Address::parse("ff1e::1").is_link_scope_multicast());
  EXPECT_EQ(Address::parse("ff1e::1").multicast_scope(), 0xe);
  EXPECT_TRUE(Address::parse("fe80::1").is_link_local_unicast());
  EXPECT_TRUE(Address::parse("febf::1").is_link_local_unicast());
  EXPECT_FALSE(Address::parse("fec0::1").is_link_local_unicast());
  EXPECT_FALSE(Address::parse("2001:db8::1").is_multicast());
}

TEST(Address, WellKnownAddresses) {
  EXPECT_EQ(Address::all_nodes().str(), "ff02::1");
  EXPECT_EQ(Address::all_routers().str(), "ff02::2");
  EXPECT_EQ(Address::all_pim_routers().str(), "ff02::d");
}

TEST(Address, FromPrefixIid) {
  Address prefix = Address::parse("2001:db8:7::");
  Address a = Address::from_prefix_iid(prefix, 0x42);
  EXPECT_EQ(a.str(), "2001:db8:7::42");
  EXPECT_EQ(a.high64(), prefix.high64());
  EXPECT_EQ(a.low64(), 0x42u);
}

TEST(Address, SerializeRoundTrip) {
  Address a = Address::parse("2001:db8::abcd");
  BufferWriter w;
  a.write(w);
  EXPECT_EQ(w.size(), 16u);
  BufferReader r(w.bytes());
  EXPECT_EQ(Address::read(r), a);
}

TEST(Address, FromBytesRejectsWrongSize) {
  Bytes b(15);
  EXPECT_THROW(Address::from_bytes(b), ParseError);
}

TEST(Address, OrderingIsLexicographic) {
  EXPECT_LT(Address::parse("::1"), Address::parse("::2"));
  EXPECT_LT(Address::parse("2001::"), Address::parse("fe80::"));
}

TEST(Prefix, ContainsRespectsLength) {
  Prefix p = Prefix::parse("2001:db8:5::/64");
  EXPECT_TRUE(p.contains(Address::parse("2001:db8:5::1")));
  EXPECT_TRUE(p.contains(Address::parse("2001:db8:5:0:ffff::")));
  EXPECT_FALSE(p.contains(Address::parse("2001:db8:6::1")));
}

TEST(Prefix, NonOctetAlignedLength) {
  Prefix p = Prefix::parse("fe80::/10");
  EXPECT_TRUE(p.contains(Address::parse("fe80::1")));
  EXPECT_TRUE(p.contains(Address::parse("febf::1")));
  EXPECT_FALSE(p.contains(Address::parse("fec0::1")));
}

TEST(Prefix, CanonicalizesHostBits) {
  Prefix a = Prefix::parse("2001:db8:1::dead:beef/64");
  Prefix b = Prefix::parse("2001:db8:1::/64");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.str(), "2001:db8:1::/64");
}

TEST(Prefix, ZeroLengthMatchesEverything) {
  Prefix def = Prefix::parse("::/0");
  EXPECT_TRUE(def.contains(Address::parse("2001::1")));
  EXPECT_TRUE(def.contains(Address::parse("ff02::1")));
}

TEST(Prefix, FullLengthMatchesExactly) {
  Prefix host = Prefix::parse("2001:db8::1/128");
  EXPECT_TRUE(host.contains(Address::parse("2001:db8::1")));
  EXPECT_FALSE(host.contains(Address::parse("2001:db8::2")));
}

TEST(Prefix, ParseRejectsMalformed) {
  EXPECT_THROW(Prefix::parse("2001:db8::"), ParseError);    // no length
  EXPECT_THROW(Prefix::parse("2001:db8::/129"), ParseError);
  EXPECT_THROW(Prefix::parse("2001:db8::/x"), ParseError);
  EXPECT_THROW(Prefix::parse("2001:db8::/"), ParseError);
}

TEST(Address, HashDistinguishes) {
  std::hash<Address> h;
  EXPECT_NE(h(Address::parse("::1")), h(Address::parse("::2")));
  EXPECT_EQ(h(Address::parse("ff1e::1")), h(Address::parse("ff1e::1")));
}

}  // namespace
}  // namespace mip6
