// Ipv6Stack behaviour: address ownership, neighbor resolution, unicast
// forwarding across a router, multicast delivery rules, intercepts, and the
// autoconfiguration used for mobility.
#include "ipv6/stack.hpp"

#include <gtest/gtest.h>

#include "ipv6/global_routing.hpp"
#include "ipv6/icmpv6.hpp"
#include "ipv6/udp.hpp"

namespace mip6 {
namespace {

// Two-LAN topology: hostA -- lan1 -- router -- lan2 -- hostB.
struct TwoLan {
  Network net{1};
  AddressingPlan plan;
  Link& lan1;
  Link& lan2;
  Node& host_a_node;
  Node& router_node;
  Node& host_b_node;
  std::unique_ptr<Ipv6Stack> host_a;
  std::unique_ptr<Ipv6Stack> router;
  std::unique_ptr<Ipv6Stack> host_b;
  GlobalRouting routing{net, plan};

  TwoLan()
      : lan1(net.add_link("lan1", Time::us(10))),
        lan2(net.add_link("lan2", Time::us(10))),
        host_a_node(net.add_node("hostA")),
        router_node(net.add_node("router")),
        host_b_node(net.add_node("hostB")) {
    plan.set_link_prefix(lan1.id(), Prefix::parse("2001:db8:1::/64"));
    plan.set_link_prefix(lan2.id(), Prefix::parse("2001:db8:2::/64"));

    host_a_node.add_interface().attach(lan1);
    router_node.add_interface().attach(lan1);
    router_node.add_interface().attach(lan2);
    host_b_node.add_interface().attach(lan2);

    host_a = std::make_unique<Ipv6Stack>(host_a_node, plan, false);
    router = std::make_unique<Ipv6Stack>(router_node, plan, true);
    host_b = std::make_unique<Ipv6Stack>(host_b_node, plan, false);

    // Router addresses.
    for (const auto& iface : router_node.interfaces()) {
      router->add_address(iface->id(),
                          Address::from_prefix_iid(Address::parse("fe80::"),
                                                   router->iid()));
      router->add_address(
          iface->id(),
          Address::from_prefix_iid(
              plan.prefix_of(iface->link()->id()).network(), router->iid()));
    }
    plan.set_default_router(lan1.id(),
                            router->global_address(router_iface(lan1)));
    plan.set_default_router(lan2.id(),
                            router->global_address(router_iface(lan2)));
    routing.register_stack(*host_a);
    routing.register_stack(*router);
    routing.register_stack(*host_b);
    routing.recompute();
  }

  IfaceId router_iface(const Link& link) const {
    for (const auto& iface : router_node.interfaces()) {
      if (iface->link() == &link) return iface->id();
    }
    throw LogicError("router not on link");
  }
  IfaceId a_iface() const { return host_a_node.iface(0).id(); }
  IfaceId b_iface() const { return host_b_node.iface(0).id(); }
};

TEST(Stack, AutoconfigureAssignsSlaacAndLinkLocal) {
  TwoLan t;
  EXPECT_TRUE(t.host_a->has_link_local(t.a_iface()));
  Address global = t.host_a->global_address(t.a_iface());
  EXPECT_TRUE(Prefix::parse("2001:db8:1::/64").contains(global));
  EXPECT_TRUE(t.host_a->owns_address(global));
}

TEST(Stack, UnicastAcrossRouter) {
  TwoLan t;
  Address a = t.host_a->global_address(t.a_iface());
  Address b = t.host_b->global_address(t.b_iface());

  int delivered = 0;
  t.host_b->set_proto_handler(
      proto::kUdp, [&](const ParsedDatagram& d, const Packet&, IfaceId) {
        ++delivered;
        EXPECT_EQ(d.hdr.src, a);
        // One router hop decrements the hop limit once.
        EXPECT_EQ(d.hdr.hop_limit, Ipv6Header::kDefaultHopLimit - 1);
      });

  DatagramSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.protocol = proto::kUdp;
  spec.payload = UdpDatagram{1, 2, Bytes{1}}.serialize(a, b);
  EXPECT_TRUE(t.host_a->send(spec));
  t.net.scheduler().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(t.net.counters().get("ipv6/fwd"), 1u);
}

TEST(Stack, NoRouteDropsAndCounts) {
  TwoLan t;
  DatagramSpec spec;
  spec.src = t.host_a->global_address(t.a_iface());
  spec.dst = Address::parse("2001:dead::1");
  spec.protocol = proto::kNoNext;
  // Host has a default route, so the host sends; the router drops.
  EXPECT_TRUE(t.host_a->send(spec));
  t.net.scheduler().run();
  EXPECT_EQ(t.net.counters().get("ipv6/fwd-drop/no-route"), 1u);
}

TEST(Stack, HopLimitExhaustionDropped) {
  TwoLan t;
  DatagramSpec spec;
  spec.src = t.host_a->global_address(t.a_iface());
  spec.dst = t.host_b->global_address(t.b_iface());
  spec.hop_limit = 1;
  spec.protocol = proto::kNoNext;
  EXPECT_TRUE(t.host_a->send(spec));
  t.net.scheduler().run();
  EXPECT_EQ(t.net.counters().get("ipv6/fwd-drop/hop-limit"), 1u);
}

TEST(Stack, MulticastDeliveredOnlyToMembers) {
  TwoLan t;
  Address group = Address::parse("ff1e::7");
  int a_rx = 0, b_rx = 0;
  t.host_a->set_proto_handler(
      proto::kUdp,
      [&](const ParsedDatagram&, const Packet&, IfaceId) { ++a_rx; });
  t.host_b->set_proto_handler(
      proto::kUdp,
      [&](const ParsedDatagram&, const Packet&, IfaceId) { ++b_rx; });

  // host_b joins; host_a does not. Send from the router onto both LANs.
  t.host_b->join_local_group(t.b_iface(), group);
  for (const auto& iface : t.router_node.interfaces()) {
    DatagramSpec spec;
    spec.src = t.router->global_address(iface->id());
    spec.dst = group;
    spec.protocol = proto::kUdp;
    spec.payload = UdpDatagram{1, 2, Bytes{1}}.serialize(spec.src, group);
    t.router->send_on_iface(iface->id(), spec);
  }
  t.net.scheduler().run();
  EXPECT_EQ(a_rx, 0);
  EXPECT_EQ(b_rx, 1);
}

TEST(Stack, AllNodesAlwaysDelivered) {
  TwoLan t;
  int got = 0;
  t.host_a->set_proto_handler(
      proto::kIcmpv6,
      [&](const ParsedDatagram&, const Packet&, IfaceId) { ++got; });
  DatagramSpec spec;
  spec.src = t.router->link_local_address(t.router_iface(t.lan1));
  spec.dst = Address::all_nodes();
  spec.hop_limit = 1;
  spec.protocol = proto::kIcmpv6;
  Icmpv6Message m;
  m.type = 200;  // arbitrary type; raw proto handler sees it regardless
  spec.payload = m.serialize(spec.src, spec.dst);
  t.router->send_on_iface(t.router_iface(t.lan1), spec);
  t.net.scheduler().run();
  EXPECT_EQ(got, 1);
}

TEST(Stack, LinkScopeMulticastNeverForwarded) {
  TwoLan t;
  int forwarded = 0;
  t.router->set_mcast_forwarder(
      [&](const ParsedDatagram&, const Packet&, IfaceId) { ++forwarded; });
  DatagramSpec spec;
  spec.src = t.host_a->link_local_address(t.a_iface());
  spec.dst = Address::parse("ff02::99");
  spec.hop_limit = 1;
  spec.protocol = proto::kNoNext;
  t.host_a->send_on_iface(t.a_iface(), spec);
  t.net.scheduler().run();
  EXPECT_EQ(forwarded, 0);

  // Routable scope reaches the forwarder.
  spec.dst = Address::parse("ff1e::99");
  t.host_a->send_on_iface(t.a_iface(), spec);
  t.net.scheduler().run();
  EXPECT_EQ(forwarded, 1);
}

TEST(Stack, InterceptDivertsToHandler) {
  TwoLan t;
  Address phantom =
      Address::from_prefix_iid(Address::parse("2001:db8:2::"), 0x7777);
  int intercepted = 0;
  t.router->add_intercept(phantom);
  t.router->set_intercept_handler(
      [&](const ParsedDatagram& d, const Packet&) {
        ++intercepted;
        EXPECT_EQ(d.hdr.dst, phantom);
      });
  DatagramSpec spec;
  spec.src = t.host_a->global_address(t.a_iface());
  spec.dst = phantom;
  spec.protocol = proto::kNoNext;
  t.host_a->send(spec);
  t.net.scheduler().run();
  EXPECT_EQ(intercepted, 1);

  t.router->remove_intercept(phantom);
  t.host_a->send(spec);
  t.net.scheduler().run();
  EXPECT_EQ(intercepted, 1);  // now silently dropped at neighbor resolution
}

TEST(Stack, PinnedAddressSurvivesAutoconfigure) {
  TwoLan t;
  Address home = Address::parse("2001:db8:9::99");
  t.host_a->add_address(t.a_iface(), home, /*pinned=*/true);
  t.host_a->autoconfigure(t.a_iface());
  EXPECT_TRUE(t.host_a->owns_address(home));
  // Non-pinned SLAAC address was re-derived for the same link.
  EXPECT_TRUE(t.host_a->owns_address(
      Address::from_prefix_iid(Address::parse("2001:db8:1::"),
                               t.host_a->iid())));
}

TEST(Stack, AutoconfigureAfterMoveSwitchesPrefix) {
  TwoLan t;
  Interface& iface = t.host_a_node.iface(0);
  Address old_global = t.host_a->global_address(t.a_iface());
  iface.detach();
  iface.attach(t.lan2);
  t.host_a->autoconfigure(t.a_iface());
  Address new_global = t.host_a->global_address(t.a_iface());
  EXPECT_TRUE(Prefix::parse("2001:db8:2::/64").contains(new_global));
  EXPECT_FALSE(t.host_a->owns_address(old_global));
}

TEST(Stack, OptionHandlerInvokedOnLocalDelivery) {
  TwoLan t;
  int seen = 0;
  t.host_b->set_option_handler(
      opt::kBindingRequest,
      [&](const DestOption& o, const ParsedDatagram&, IfaceId) {
        ++seen;
        EXPECT_EQ(o.data.size(), 2u);
      });
  DatagramSpec spec;
  spec.src = t.host_a->global_address(t.a_iface());
  spec.dst = t.host_b->global_address(t.b_iface());
  spec.dest_options.push_back(DestOption{opt::kBindingRequest, Bytes{1, 2}});
  spec.protocol = proto::kNoNext;
  t.host_a->send(spec);
  t.net.scheduler().run();
  EXPECT_EQ(seen, 1);
}

TEST(Stack, ReceiveAsIfRunsFullPath) {
  TwoLan t;
  int got = 0;
  t.host_a->set_proto_handler(
      proto::kUdp,
      [&](const ParsedDatagram&, const Packet&, IfaceId) { ++got; });
  Address a = t.host_a->global_address(t.a_iface());
  DatagramSpec spec;
  spec.src = a;
  spec.dst = a;
  spec.protocol = proto::kUdp;
  spec.payload = UdpDatagram{5, 6, Bytes{}}.serialize(a, a);
  t.host_a->receive_as_if(t.a_iface(), build_datagram(spec));
  EXPECT_EQ(got, 1);
}

TEST(Stack, MalformedPacketCounted) {
  TwoLan t;
  Interface& iface = t.host_a_node.iface(0);
  Packet junk = t.net.make_packet(Bytes{1, 2, 3});
  iface.send(junk);  // router + nothing else on lan1 receive it
  t.net.scheduler().run();
  EXPECT_GE(t.net.counters().get("ipv6/rx-drop/parse-error"), 1u);
}

TEST(Stack, GlobalRoutingMetricsAreHopCounts) {
  TwoLan t;
  const Route* r = t.router->rib().lookup(Address::parse("2001:db8:1::5"));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->metric, 1u);  // directly attached
  EXPECT_TRUE(r->on_link());
}

TEST(GlobalRouting, LinkDistanceAndTree) {
  TwoLan t;
  EXPECT_EQ(t.routing.link_distance(t.lan1.id(), t.lan1.id()), 0);
  EXPECT_EQ(t.routing.link_distance(t.lan1.id(), t.lan2.id()), 1);
  auto tree = t.routing.shortest_path_tree(t.lan1.id(), {t.lan2.id()});
  EXPECT_EQ(tree.size(), 2u);  // both links on the path
}

}  // namespace
}  // namespace mip6
