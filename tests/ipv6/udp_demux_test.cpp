#include "ipv6/udp_demux.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"

namespace mip6 {
namespace {

TEST(UdpDemux, DispatchesByDestinationPort) {
  World world(1);
  Link& lan = world.add_link("lan");
  NodeRuntime& r = world.add_router("R", {&lan});
  NodeRuntime& h = world.add_host("H", lan);
  world.finalize();

  int on_100 = 0, on_200 = 0;
  r.udp->bind(100, [&](const UdpDatagram&, const ParsedDatagram&, IfaceId) {
    ++on_100;
  });
  r.udp->bind(200, [&](const UdpDatagram& u, const ParsedDatagram&, IfaceId) {
    ++on_200;
    EXPECT_EQ(u.payload.size(), 3u);
  });

  auto send = [&](std::uint16_t port) {
    DatagramSpec spec;
    spec.src = h.stack->global_address(h.iface());
    spec.dst = r.address_on(lan);
    spec.protocol = proto::kUdp;
    spec.payload =
        UdpDatagram{55, port, Bytes{1, 2, 3}}.serialize(spec.src, spec.dst);
    h.stack->send(spec);
  };
  send(100);
  send(200);
  send(200);
  send(999);  // unbound
  world.run_until(Time::sec(1));
  EXPECT_EQ(on_100, 1);
  EXPECT_EQ(on_200, 2);
  EXPECT_EQ(world.net().counters().get("udp/rx-drop/no-listener"), 1u);
}

TEST(UdpDemux, MalformedUdpCounted) {
  World world(1);
  Link& lan = world.add_link("lan");
  NodeRuntime& r = world.add_router("R", {&lan});
  NodeRuntime& h = world.add_host("H", lan);
  world.finalize();
  (void)r;

  DatagramSpec spec;
  spec.src = h.stack->global_address(h.iface());
  spec.dst = r.address_on(lan);
  spec.protocol = proto::kUdp;
  spec.payload = Bytes{1, 2, 3};  // shorter than a UDP header
  h.stack->send(spec);
  world.run_until(Time::sec(1));
  EXPECT_EQ(world.net().counters().get("udp/rx-drop/parse-error"), 1u);
}

TEST(UdpDemux, RebindReplacesHandler) {
  World world(1);
  Link& lan = world.add_link("lan");
  NodeRuntime& r = world.add_router("R", {&lan});
  NodeRuntime& h = world.add_host("H", lan);
  world.finalize();

  int first = 0, second = 0;
  r.udp->bind(42, [&](const UdpDatagram&, const ParsedDatagram&, IfaceId) {
    ++first;
  });
  r.udp->bind(42, [&](const UdpDatagram&, const ParsedDatagram&, IfaceId) {
    ++second;
  });
  DatagramSpec spec;
  spec.src = h.stack->global_address(h.iface());
  spec.dst = r.address_on(lan);
  spec.protocol = proto::kUdp;
  spec.payload = UdpDatagram{1, 42, Bytes{}}.serialize(spec.src, spec.dst);
  h.stack->send(spec);
  world.run_until(Time::sec(1));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace mip6
