// Allocation-discipline guards for the simulation hot path.
//
// This TU overrides global operator new/delete with counting wrappers so the
// tests can assert an exact allocation count over a code window. It must stay
// its own test binary: the override is process-wide.
//
// Guarded invariants (see src/sim/scheduler.hpp):
//  * steady-state Timer::arm -> cancel -> arm cycles allocate nothing — the
//    scheduler recycles EventHandle states through a free list and the arm
//    lambda fits std::function's inline buffer;
//  * Trace::emit with no sink installed allocates nothing — detail strings
//    are built lazily, only when a sink will consume them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"
#include "stats/counters.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mip6 {
namespace {

std::uint64_t allocations() {
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(AllocGuard, SteadyStateTimerRearmDoesNotAllocate) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&fired] { ++fired; });

  // Warm-up: grow the heap vector, the state free list, and their
  // capacities to steady state. Each arm() cancels the previous expiry;
  // the dead entry drains lazily ~9 pops later and its state recycles
  // into the free list.
  for (int i = 0; i < 256; ++i) {
    timer.arm(Time::ms(10));
    sched.run_until(sched.now() + Time::ms(1));
  }
  sched.run_until(sched.now() + Time::ms(20));  // drain the last expiry
  ASSERT_EQ(fired, 1);

  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    timer.arm(Time::ms(10));
    sched.run_until(sched.now() + Time::ms(1));
  }
  EXPECT_EQ(allocations(), before)
      << "Timer::arm re-arm cycle allocated on the hot path";
}

TEST(AllocGuard, ExpiringTimersDoNotAllocateAtSteadyState) {
  Scheduler sched;
  std::uint64_t fired = 0;
  Timer timer(sched, [&fired] { ++fired; });

  for (int i = 0; i < 256; ++i) {
    timer.arm(Time::ms(1));
    sched.run_until(sched.now() + Time::ms(2));
  }
  ASSERT_EQ(fired, 256u);

  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    timer.arm(Time::ms(1));
    sched.run_until(sched.now() + Time::ms(2));
  }
  EXPECT_EQ(allocations(), before)
      << "arm -> expire cycle allocated on the hot path";
  EXPECT_EQ(fired, 10256u);
}

TEST(AllocGuard, DisabledTraceEmitDoesNotAllocate) {
  Trace trace;
  ASSERT_FALSE(trace.enabled());

  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    trace.emit(Time::ms(i), "pimdm", "graft-tx", [&] {
      // This detail builder must never run while no sink is installed.
      return std::string(64, 'x') + std::to_string(i);
    });
  }
  EXPECT_EQ(allocations(), before)
      << "Trace::emit allocated with tracing disabled";
}

// Two self-rearming timers pinned to two worker shards: every handler
// invocation runs on a worker thread with current_shard_slot() >= 0, the
// exact context where sharded Trace/CounterRegistry divert to per-shard
// buffers. The steady-state window loop (dispatch, barrier, outbox drain)
// must be allocation-free too, or these guards trip on the scheduler
// rather than the instrumented call.
struct ShardedFixture {
  Scheduler sched;
  Domain d1, d2;
  // The timer handlers capture only `this` so they stay inside
  // std::function's inline buffer: Timer::arm copies the handler per arm,
  // and a spilled handler would charge one heap allocation to every fire,
  // drowning the signal these guards are after. The test bodies live in
  // these out-of-line functions instead.
  std::function<void()> body1, body2;
  std::unique_ptr<Timer> t1, t2;
  std::atomic<std::uint64_t> fired{0};

  ShardedFixture(std::function<void()> b1, std::function<void()> b2)
      : body1(std::move(b1)), body2(std::move(b2)) {
    d1 = sched.add_domain();
    d2 = sched.add_domain();
    t1 = std::make_unique<Timer>(sched, [this] {
      body1();
      fired.fetch_add(1, std::memory_order_relaxed);
      t1->arm(Time::ms(1));
    }, d1);
    t2 = std::make_unique<Timer>(sched, [this] {
      body2();
      fired.fetch_add(1, std::memory_order_relaxed);
      t2->arm(Time::ms(1));
    }, d2);
    // Domain 0 is the structural world domain; d1 -> shard 0, d2 -> shard 1.
    sched.configure_shards({Scheduler::kStructuralShard, 0, 1}, 2,
                           Time::us(100));
    t1->arm(Time::ms(1));
    t2->arm(Time::ms(1));
  }
};

TEST(AllocGuard, DisabledTraceEmitFromWorkerShardsDoesNotAllocate) {
  Trace trace;
  ASSERT_FALSE(trace.enabled());
  trace.enable_shards(2);

  ShardedFixture f(
      [&] {
        trace.emit(f.sched.now(), "pimdm/Shard0", "tick", [] {
          // Must never run: no sink is installed.
          return std::string(64, 'x');
        });
      },
      [&] {
        trace.emit(f.sched.now(), "pimdm/Shard1", "tick", [] {
          return std::string(64, 'y');
        });
      });

  // Warm-up: grow heaps, worker-pool scratch and window bookkeeping to
  // steady state.
  f.sched.run_until(Time::ms(256));
  ASSERT_GE(f.fired.load(), 256u);

  const std::uint64_t before = allocations();
  f.sched.run_until(Time::ms(1256));
  EXPECT_EQ(allocations(), before)
      << "disabled Trace::emit allocated from a worker shard";
  ASSERT_GE(f.fired.load(), 2000u);
}

TEST(AllocGuard, ShardedCounterCellAddFromWorkersDoesNotAllocate) {
  CounterRegistry reg;
  // Resolve before enabling shards: cell creation is build-time work.
  CounterCell c1 = reg.cell("guard/shard0");
  CounterCell c2 = reg.cell("guard/shard1");
  reg.enable_shards(2);

  ShardedFixture f([&] { c1.add(); }, [&] { c2.add(); });

  f.sched.run_until(Time::ms(256));
  const std::uint64_t warm1 = reg.get("guard/shard0");
  const std::uint64_t warm2 = reg.get("guard/shard1");
  ASSERT_GT(warm1, 0u);
  ASSERT_GT(warm2, 0u);

  const std::uint64_t before = allocations();
  f.sched.run_until(Time::ms(1256));
  EXPECT_EQ(allocations(), before)
      << "sharded CounterCell::add allocated from a worker shard";
  // The barrier merge folded every overlay increment into the base store.
  EXPECT_GT(reg.get("guard/shard0"), warm1);
  EXPECT_GT(reg.get("guard/shard1"), warm2);
}

TEST(AllocGuard, EnabledTraceStillInvokesDetailBuilder) {
  Trace trace;
  std::vector<TraceRecord> records;
  trace.set_sink(Trace::recorder(records));
  trace.emit(Time::sec(1), "mld", "listener-added", [] {
    return std::string("group=ff1e::1");
  });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].component, "mld");
  EXPECT_EQ(records[0].event, "listener-added");
  EXPECT_EQ(records[0].detail, "group=ff1e::1");
}

}  // namespace
}  // namespace mip6
