// Allocation-discipline guards for the simulation hot path.
//
// This TU overrides global operator new/delete with counting wrappers so the
// tests can assert an exact allocation count over a code window. It must stay
// its own test binary: the override is process-wide.
//
// Guarded invariants (see src/sim/scheduler.hpp):
//  * steady-state Timer::arm -> cancel -> arm cycles allocate nothing — the
//    scheduler recycles EventHandle states through a free list and the arm
//    lambda fits std::function's inline buffer;
//  * Trace::emit with no sink installed allocates nothing — detail strings
//    are built lazily, only when a sink will consume them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/scheduler.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mip6 {
namespace {

std::uint64_t allocations() {
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(AllocGuard, SteadyStateTimerRearmDoesNotAllocate) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&fired] { ++fired; });

  // Warm-up: grow the heap vector, the state free list, and their
  // capacities to steady state. Each arm() cancels the previous expiry;
  // the dead entry drains lazily ~9 pops later and its state recycles
  // into the free list.
  for (int i = 0; i < 256; ++i) {
    timer.arm(Time::ms(10));
    sched.run_until(sched.now() + Time::ms(1));
  }
  sched.run_until(sched.now() + Time::ms(20));  // drain the last expiry
  ASSERT_EQ(fired, 1);

  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    timer.arm(Time::ms(10));
    sched.run_until(sched.now() + Time::ms(1));
  }
  EXPECT_EQ(allocations(), before)
      << "Timer::arm re-arm cycle allocated on the hot path";
}

TEST(AllocGuard, ExpiringTimersDoNotAllocateAtSteadyState) {
  Scheduler sched;
  std::uint64_t fired = 0;
  Timer timer(sched, [&fired] { ++fired; });

  for (int i = 0; i < 256; ++i) {
    timer.arm(Time::ms(1));
    sched.run_until(sched.now() + Time::ms(2));
  }
  ASSERT_EQ(fired, 256u);

  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    timer.arm(Time::ms(1));
    sched.run_until(sched.now() + Time::ms(2));
  }
  EXPECT_EQ(allocations(), before)
      << "arm -> expire cycle allocated on the hot path";
  EXPECT_EQ(fired, 10256u);
}

TEST(AllocGuard, DisabledTraceEmitDoesNotAllocate) {
  Trace trace;
  ASSERT_FALSE(trace.enabled());

  const std::uint64_t before = allocations();
  for (int i = 0; i < 10000; ++i) {
    trace.emit(Time::ms(i), "pimdm", "graft-tx", [&] {
      // This detail builder must never run while no sink is installed.
      return std::string(64, 'x') + std::to_string(i);
    });
  }
  EXPECT_EQ(allocations(), before)
      << "Trace::emit allocated with tracing disabled";
}

TEST(AllocGuard, EnabledTraceStillInvokesDetailBuilder) {
  Trace trace;
  std::vector<TraceRecord> records;
  trace.set_sink(Trace::recorder(records));
  trace.emit(Time::sec(1), "mld", "listener-added", [] {
    return std::string("group=ff1e::1");
  });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].component, "mld");
  EXPECT_EQ(records[0].event, "listener-added");
  EXPECT_EQ(records[0].detail, "group=ff1e::1");
}

}  // namespace
}  // namespace mip6
