#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mip6 {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time::sec(3), [&] { order.push_back(3); });
  s.schedule_at(Time::sec(1), [&] { order.push_back(1); });
  s.schedule_at(Time::sec(2), [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Time::sec(3));
}

TEST(Scheduler, SameTimeTiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(Time::sec(1), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, RunUntilExecutesInclusiveBoundary) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(Time::sec(5), [&] { ++ran; });
  s.schedule_at(Time::sec(6), [&] { ++ran; });
  EXPECT_EQ(s.run_until(Time::sec(5)), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), Time::sec(5));
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, RunUntilAdvancesClockWithoutEvents) {
  Scheduler s;
  s.run_until(Time::sec(42));
  EXPECT_EQ(s.now(), Time::sec(42));
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  s.run_until(Time::sec(10));
  Time fired = Time::never();
  s.schedule_in(Time::sec(5), [&] { fired = s.now(); });
  s.run();
  EXPECT_EQ(fired, Time::sec(15));
}

TEST(Scheduler, SchedulingIntoThePastThrows) {
  Scheduler s;
  s.run_until(Time::sec(10));
  EXPECT_THROW(s.schedule_at(Time::sec(9), [] {}), LogicError);
  EXPECT_THROW(s.schedule_in(Time::zero() - Time::sec(1), [] {}), LogicError);
  EXPECT_THROW(s.schedule_at(Time::never(), [] {}), LogicError);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int ran = 0;
  EventHandle h = s.schedule_at(Time::sec(1), [&] { ++ran; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_EQ(ran, 0);
}

TEST(Scheduler, CancelAfterExecutionIsNoop) {
  Scheduler s;
  int ran = 0;
  EventHandle h = s.schedule_at(Time::sec(1), [&] { ++ran; });
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or affect anything
  EXPECT_EQ(ran, 1);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  std::vector<Time> fire_times;
  std::function<void()> chain = [&] {
    fire_times.push_back(s.now());
    if (fire_times.size() < 5) s.schedule_in(Time::sec(1), chain);
  };
  s.schedule_at(Time::sec(1), chain);
  s.run();
  ASSERT_EQ(fire_times.size(), 5u);
  EXPECT_EQ(fire_times.back(), Time::sec(5));
}

TEST(Scheduler, InertHandleIsSafe) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Scheduler, ExecutedEventsCounterAccumulates) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_in(Time::sec(i + 1), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

// Regression: cancelled events used to sit in the queue until their expiry
// time surfaced at the top, so the re-arm pattern (schedule far-future,
// cancel, repeat — what every Timer::arm does) grew the heap without bound.
// Compaction must keep the heap proportional to the LIVE event count.
TEST(Scheduler, TenThousandCancelsKeepQueueBounded) {
  Scheduler s;
  for (int i = 0; i < 10000; ++i) {
    EventHandle h = s.schedule_at(Time::sec(1000 + i), [] {});
    h.cancel();
  }
  EXPECT_EQ(s.live_events(), 0u);
  EXPECT_LT(s.pending_events(), 2 * Scheduler::kCompactMin);
  EXPECT_GT(s.compactions(), 0u);
  EXPECT_EQ(s.run(), 0u);
}

TEST(Scheduler, CompactionPreservesLiveEventsAndOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.schedule_at(Time::sec(i + 1), [&order, i] { order.push_back(i); });
  }
  // Interleave enough schedule+cancel churn to force several compactions
  // while the live events above are still in the heap.
  for (int i = 0; i < 1000; ++i) {
    EventHandle h = s.schedule_at(Time::sec(5000), [] {});
    h.cancel();
  }
  EXPECT_GT(s.compactions(), 0u);
  EXPECT_EQ(s.live_events(), 100u);
  s.run_until(Time::sec(200));
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, HandleOutlivesSchedulerSafely) {
  EventHandle h;
  {
    Scheduler s;
    h = s.schedule_at(Time::sec(1), [] {});
  }
  EXPECT_TRUE(h.pending());  // never ran, never cancelled
  h.cancel();                // must not touch the destroyed scheduler
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, RecycledStatesDoNotConfuseOldHandles) {
  Scheduler s;
  EventHandle stale = s.schedule_at(Time::sec(1), [] {});
  s.run_until(Time::sec(1));
  EXPECT_FALSE(stale.pending());
  // The executed event's state cannot be recycled while `stale` holds it,
  // so a burst of new events must not flip `stale` back to pending.
  for (int i = 0; i < 50; ++i) s.schedule_at(Time::sec(10), [] {});
  EXPECT_FALSE(stale.pending());
}

}  // namespace
}  // namespace mip6
