#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mip6 {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntCoversRangeEvenly) {
  Rng rng(7);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[rng.uniform_int(kBuckets)]++;
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    // Each bucket expects 10000; allow 10% deviation.
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets / 10.0);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(8);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Rng, DerivedSeedsAreDistinct) {
  std::uint64_t base = 42;
  std::uint64_t s0 = Rng::derive_seed(base, 0);
  std::uint64_t s1 = Rng::derive_seed(base, 1);
  std::uint64_t s2 = Rng::derive_seed(base, 2);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s0, s2);
  // Stable across calls.
  EXPECT_EQ(s0, Rng::derive_seed(base, 0));
}

TEST(Rng, MeanOfUniformIsHalf) {
  Rng rng(10);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

}  // namespace
}  // namespace mip6
