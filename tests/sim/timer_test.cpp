#include "sim/timer.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(Timer, FiresOnceAtExpiry) {
  Scheduler s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.arm(Time::sec(2));
  EXPECT_TRUE(t.running());
  EXPECT_EQ(t.expiry(), Time::sec(2));
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.running());
  EXPECT_TRUE(t.expiry().is_never());
}

TEST(Timer, RearmReplacesPreviousExpiry) {
  Scheduler s;
  Time fired_at = Time::never();
  Timer t(s, [&] { fired_at = s.now(); });
  t.arm(Time::sec(2));
  t.arm(Time::sec(10));  // re-arm later: the 2 s expiry must not fire
  s.run();
  EXPECT_EQ(fired_at, Time::sec(10));
}

TEST(Timer, CancelStopsExpiry) {
  Scheduler s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.arm(Time::sec(1));
  t.cancel();
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, ArmIfIdleOnlyWhenStopped) {
  Scheduler s;
  Timer t(s, [] {});
  t.arm(Time::sec(5));
  t.arm_if_idle(Time::sec(1));  // ignored, already running
  EXPECT_EQ(t.expiry(), Time::sec(5));
  t.cancel();
  t.arm_if_idle(Time::sec(1));
  EXPECT_EQ(t.expiry(), Time::sec(1));
}

TEST(Timer, ArmToEarlierOnlyShortens) {
  Scheduler s;
  Timer t(s, [] {});
  t.arm(Time::sec(5));
  t.arm_to_earlier(Time::sec(10));  // later: ignored
  EXPECT_EQ(t.expiry(), Time::sec(5));
  t.arm_to_earlier(Time::sec(2));  // earlier: taken
  EXPECT_EQ(t.expiry(), Time::sec(2));
  t.cancel();
  t.arm_to_earlier(Time::sec(7));  // idle: arms
  EXPECT_EQ(t.expiry(), Time::sec(7));
}

TEST(Timer, RemainingTracksClock) {
  Scheduler s;
  Timer t(s, [] {});
  t.arm(Time::sec(10));
  s.run_until(Time::sec(4));
  EXPECT_EQ(t.remaining(), Time::sec(6));
  t.cancel();
  EXPECT_TRUE(t.remaining().is_never());
}

TEST(Timer, CanRearmFromItsOwnCallback) {
  Scheduler s;
  int fired = 0;
  Timer* self = nullptr;
  Timer t(s, [&] {
    if (++fired < 3) self->arm(Time::sec(1));
  });
  self = &t;
  t.arm(Time::sec(1));
  s.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now(), Time::sec(3));
}

TEST(Timer, DestructorCancels) {
  Scheduler s;
  int fired = 0;
  {
    Timer t(s, [&] { ++fired; });
    t.arm(Time::sec(1));
  }
  s.run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace mip6
