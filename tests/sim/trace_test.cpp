#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(Trace, DisabledByDefaultAndDropsEmits) {
  Trace t;
  EXPECT_FALSE(t.enabled());
  t.emit(Time::sec(1), "c", "e", "d");  // must not crash
}

TEST(Trace, RecorderCapturesRecords) {
  Trace t;
  std::vector<TraceRecord> records;
  t.set_sink(Trace::recorder(records));
  EXPECT_TRUE(t.enabled());
  t.emit(Time::sec(1), "pimdm/RouterA", "tx-graft", "S=...");
  t.emit(Time::sec(2), "mld/Host", "report", "");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].component, "pimdm/RouterA");
  EXPECT_EQ(records[1].at, Time::sec(2));
}

TEST(Trace, ClearSinkStopsRecording) {
  Trace t;
  std::vector<TraceRecord> records;
  t.set_sink(Trace::recorder(records));
  t.emit(Time::zero(), "a", "b", "c");
  t.clear_sink();
  t.emit(Time::zero(), "a", "b", "c");
  EXPECT_EQ(records.size(), 1u);
}

TEST(TraceRecord, StrFormat) {
  TraceRecord r{Time::sec(3), "comp", "event", "detail"};
  EXPECT_EQ(r.str(), "3.000000000s [comp] event detail");
  TraceRecord no_detail{Time::zero(), "c", "e", ""};
  EXPECT_EQ(no_detail.str(), "0.000000000s [c] e");
}

}  // namespace
}  // namespace mip6
