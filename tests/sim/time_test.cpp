#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace mip6 {
namespace {

TEST(Time, Constructors) {
  EXPECT_EQ(Time::ns(5).nanos(), 5);
  EXPECT_EQ(Time::us(5).nanos(), 5'000);
  EXPECT_EQ(Time::ms(5).nanos(), 5'000'000);
  EXPECT_EQ(Time::sec(5).nanos(), 5'000'000'000LL);
  EXPECT_EQ(Time::minutes(2).nanos(), 120'000'000'000LL);
  EXPECT_EQ(Time::zero().nanos(), 0);
}

TEST(Time, SecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Time::seconds(1.5).nanos(), 1'500'000'000LL);
  EXPECT_EQ(Time::seconds(0.1234567894).nanos(), 123'456'789LL);
  EXPECT_EQ(Time::seconds(-0.5).nanos(), -500'000'000LL);
}

TEST(Time, Arithmetic) {
  Time a = Time::sec(2), b = Time::ms(500);
  EXPECT_EQ((a + b).nanos(), 2'500'000'000LL);
  EXPECT_EQ((a - b).nanos(), 1'500'000'000LL);
  EXPECT_EQ((b * 4).nanos(), 2'000'000'000LL);
  a += b;
  EXPECT_EQ(a.to_millis(), 2500.0);
  a -= b;
  EXPECT_EQ(a, Time::sec(2));
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::ms(1), Time::ms(2));
  EXPECT_EQ(Time::sec(1), Time::ms(1000));
  EXPECT_GT(Time::never(), Time::sec(1'000'000'000));
  EXPECT_TRUE(Time::never().is_never());
  EXPECT_FALSE(Time::sec(1).is_never());
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(Time::ms(250).to_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Time::us(1500).to_millis(), 1.5);
}

TEST(Time, StrFormatsFullPrecision) {
  EXPECT_EQ(Time::zero().str(), "0.000000000s");
  EXPECT_EQ(Time::ns(1).str(), "0.000000001s");
  EXPECT_EQ((Time::sec(12) + Time::ns(345)).str(), "12.000000345s");
  EXPECT_EQ(Time::never().str(), "never");
}

TEST(Time, StrHandlesNegative) {
  EXPECT_EQ((Time::zero() - Time::ms(1)).str(), "-1.999000000s");
}

}  // namespace
}  // namespace mip6
