// Quickstart: build the paper's Figure 1 network, stream multicast from
// Sender S to three receivers, move Receiver 3 to a pruned link, and watch
// PIM-DM graft the tree while MLD's listener timeout keeps the old link
// busy (the join/leave delays the paper is about).
//
//   $ ./examples/quickstart
//   $ ./examples/quickstart --trace   # additionally decode the first
//                                     # control packets on the wire
#include <cstdio>
#include <cstring>

#include "core/describe.hpp"
#include "core/figure1.hpp"
#include "core/metrics.hpp"
#include "core/traffic.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

using namespace mip6;

int main(int argc, char** argv) {
  bool trace = argc > 1 && std::strcmp(argv[1], "--trace") == 0;

  // 1. The network of Figure 1: five PIM-DM routers (all home agents), six
  //    links, Sender S plus Receivers 1-3. Approach: local membership.
  Figure1 f = build_figure1(/*seed=*/1);
  World& world = *f.world;
  const Address group = Figure1::group();

  int traced = 0;
  if (trace) {
    world.net().add_tx_hook([&](const Link& l, const Interface& from,
                                const Packet& pkt) {
      if (traced >= 40) return;
      std::string s = describe_datagram(pkt.view());
      if (s.find("Hello") != std::string::npos) return;  // drown-out filter
      if (s.find("UDP 9000") != std::string::npos && traced > 25) return;
      ++traced;
      std::printf("%11.6fs  %-14s %-5s  %s\n", world.now().to_seconds(),
                  from.name().c_str(), l.name().c_str(), s.c_str());
    });
  }

  // 2. Receivers subscribe (MLD reports go out on their links).
  GroupReceiverApp app1(*f.recv1->stack, Figure1::kDataPort);
  GroupReceiverApp app2(*f.recv2->stack, Figure1::kDataPort);
  GroupReceiverApp app3(*f.recv3->stack, Figure1::kDataPort);
  f.recv1->service->subscribe(group);
  f.recv2->service->subscribe(group);
  f.recv3->service->subscribe(group);

  // 3. Sender S streams 10 datagrams/s to ff1e::1.
  McastMetrics metrics(world.net(), world.routing(), group,
                       Figure1::kDataPort);
  metrics.update_reference_tree(
      f.link1->id(), {f.link1->id(), f.link2->id(), f.link4->id()});
  CbrSource source(
      world.scheduler(),
      [&](Bytes payload) {
        f.sender->service->send_multicast(group, Figure1::kDataPort,
                                          Figure1::kDataPort,
                                          std::move(payload));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));

  // 4. At t=30 s, Receiver 3 moves from Link 4 to the pruned Link 6.
  world.scheduler().schedule_at(Time::sec(30), [&] {
    std::printf("t=30s  Receiver3 moves Link4 -> Link6\n");
    f.recv3->mn->move_to(*f.link6);
  });

  world.run_until(Time::sec(320));

  // 5. Results.
  std::printf("\n=== delivery ===\n");
  Table t({"receiver", "unique datagrams", "duplicates"});
  t.add_row({"Receiver1", std::to_string(app1.unique_received()),
             std::to_string(app1.duplicates())});
  t.add_row({"Receiver2", std::to_string(app2.unique_received()),
             std::to_string(app2.duplicates())});
  t.add_row({"Receiver3", std::to_string(app3.unique_received()),
             std::to_string(app3.duplicates())});
  std::printf("%s", t.str().c_str());

  auto first = app3.first_rx_at_or_after(Time::sec(30));
  if (first) {
    std::printf("\nReceiver3 join delay after the move: %s\n",
                (*first - Time::sec(30)).str().c_str());
  }
  Time last_l4 = metrics.last_data_tx_on(f.link4->id());
  std::printf("leave delay: Router D kept forwarding onto the deserted "
              "Link4 until t=%s -> %s of wasted forwarding (MLD listener "
              "timeout, bounded by T_MLI = 260 s)\n",
              last_l4.str().c_str(), (last_l4 - Time::sec(30)).str().c_str());

  std::printf("\n=== per-link group data ===\n");
  Table links({"link", "data transmissions", "bytes"});
  for (int n = 1; n <= 6; ++n) {
    LinkId id = f.link(n).id();
    links.add_row({f.link(n).name(),
                   std::to_string(metrics.data_tx_count_on(id)),
                   fmt_bytes(static_cast<double>(metrics.data_bytes_on(id)))});
  }
  std::printf("%s", links.str().c_str());
  std::printf("\nrouting stretch vs ideal tree: %s   wasted: %s\n",
              fmt_double(metrics.stretch(), 3).c_str(),
              fmt_bytes(static_cast<double>(metrics.wasted_bytes())).c_str());

  std::printf("\n=== protocol activity (network-wide counters) ===\n");
  for (const auto& [name, value] : world.net().counters().snapshot()) {
    if (name.starts_with("pimdm/tx/") || name.starts_with("mld/tx/") ||
        name.starts_with("mn/tx/") || name.starts_with("ha/")) {
      std::printf("  %-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  return 0;
}
