// Campus fleet: the paper's motivating workload — "multimedia group
// communication ... for mobile hosts" — at scale. A 12-router random campus
// backbone streams one lecture feed to a fleet of mobile subscribers that
// roam between the access LANs with exponential dwell times. Compares the
// local-membership and bidirectional-tunnel approaches on delivery ratio
// and network cost, using the parallel replication runner.
//
//   $ ./examples/campus_fleet [replications]
#include <cstdio>
#include <cstdlib>

#include "core/metrics.hpp"
#include "core/mobility.hpp"
#include "core/random_topology.hpp"
#include "core/traffic.hpp"
#include "runner/parallel.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

using namespace mip6;

namespace {

constexpr std::uint16_t kPort = 9000;
const char* kGroupStr = "ff1e::100";

ReplicationResult run_fleet(std::uint64_t seed, StrategyOptions strategy,
                            std::size_t fleet_size, Time mean_dwell) {
  RandomTopologyParams params;
  params.routers = 12;
  params.extra_links = 3;
  params.seed = seed;
  RandomTopology topo = build_random_topology(params);
  World& world = *topo.world;
  const Address group = Address::parse(kGroupStr);

  // The lecturer sits on stub 0.
  NodeRuntime& lecturer = world.add_host("Lecturer", *topo.stub_links[0]);

  // The fleet homes on the other stubs, round-robin.
  std::vector<NodeRuntime*> fleet;
  std::vector<std::unique_ptr<GroupReceiverApp>> apps;
  for (std::size_t i = 0; i < fleet_size; ++i) {
    Link& home = *topo.stub_links[1 + i % (topo.stub_links.size() - 1)];
    NodeRuntime& h = world.add_host("MN" + std::to_string(i), home, strategy);
    fleet.push_back(&h);
    apps.push_back(std::make_unique<GroupReceiverApp>(*h.stack, kPort));
  }
  world.finalize();
  for (NodeRuntime* h : fleet) h->service->subscribe(group);

  CbrSource source(
      world.scheduler(),
      [&](Bytes payload) {
        lecturer.service->send_multicast(group, kPort, kPort,
                                         std::move(payload));
      },
      Time::ms(100), 512);
  source.start(Time::sec(1));

  // Everyone roams among all stub LANs.
  std::vector<std::unique_ptr<RandomMover>> movers;
  std::vector<Link*> roam_links(topo.stub_links.begin(),
                                topo.stub_links.end());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    movers.push_back(std::make_unique<RandomMover>(
        *fleet[i]->mn, world.net().rng(), roam_links, mean_dwell));
    movers[i]->start(Time::sec(10) + Time::sec(static_cast<int>(i)));
  }

  const Time horizon = Time::sec(600);
  world.run_until(horizon);

  ReplicationResult r;
  double sent = static_cast<double>(source.sent());
  Summary ratio;
  for (auto& app : apps) {
    ratio.add(static_cast<double>(app->unique_received()) / sent);
  }
  r["delivery_ratio"] = ratio.mean();
  r["worst_receiver_ratio"] = ratio.min();
  r["ha_mcast_encaps"] = static_cast<double>(
      world.net().counters().get("ha/encap-multicast"));
  r["pim_ctrl_bytes"] =
      static_cast<double>(world.net().counters().get("pimdm/tx-bytes"));
  r["mld_ctrl_bytes"] =
      static_cast<double>(world.net().counters().get("mld/tx-bytes"));
  r["moves"] = [&] {
    double total = 0;
    for (auto& m : movers) total += static_cast<double>(m->moves());
    return total;
  }();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replications = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::size_t fleet_size = 8;
  const Time dwell = Time::sec(60);

  std::printf("Campus lecture feed, %zu mobile subscribers, mean dwell %s, "
              "%zu replications in parallel.\n\n",
              fleet_size, dwell.str().c_str(), replications);

  Table t({"approach", "delivery ratio", "worst receiver", "HA encaps",
           "PIM ctrl", "MLD ctrl", "moves"});
  struct Case {
    const char* label;
    StrategyOptions opts;
  };
  for (const Case& c :
       {Case{"local membership",
             {McastStrategy::kLocalMembership, HaRegistration::kGroupListBu}},
        Case{"bidir tunnel",
             {McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu}}}) {
    ReplicationOptions opts;
    opts.replications = replications;
    opts.base_seed = 2026;
    auto merged = run_replications(opts, [&](std::uint64_t seed) {
      return run_fleet(seed, c.opts, fleet_size, dwell);
    });
    t.add_row({c.label,
               fmt_double(merged.at("delivery_ratio").mean(), 4) + " ± " +
                   fmt_double(merged.at("delivery_ratio").ci95_halfwidth(), 4),
               fmt_double(merged.at("worst_receiver_ratio").mean(), 4),
               fmt_double(merged.at("ha_mcast_encaps").mean(), 0),
               fmt_bytes(merged.at("pim_ctrl_bytes").mean()),
               fmt_bytes(merged.at("mld_ctrl_bytes").mean()),
               fmt_double(merged.at("moves").mean(), 0)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\npaper: the tunnel hides handoffs from the tree (high\n"
              "delivery, heavy HA load); local membership keeps the HA idle\n"
              "but pays a join delay on every one of the fleet's moves.\n");
  return 0;
}
