// Conference with a mobile speaker: a many-to-many session where the
// *sender* is the mobile host — the paper's Section 4.2.2. Shows the cost
// of a locally-sending mobile speaker (new flooded tree and spurious
// asserts on every move, stale (S,G) state piling up) against the reverse
// tunnel (stable home-rooted tree, per-packet encapsulation instead).
//
//   $ ./examples/conference_sender
#include <cstdio>

#include "core/figure1.hpp"
#include "core/metrics.hpp"
#include "core/mobility.hpp"
#include "core/traffic.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

using namespace mip6;

namespace {

struct Outcome {
  std::uint64_t delivered_r1 = 0;
  std::uint64_t delivered_r2 = 0;
  std::uint64_t asserts = 0;
  std::uint64_t floods = 0;  // (S,G) entries created network-wide
  std::uint64_t max_trees = 0;
  std::uint64_t mn_encaps = 0;
  double stretch = 0;
};

Outcome run_case(StrategyOptions opts) {
  Figure1 f = build_figure1(/*seed=*/3, {}, opts);
  World& world = *f.world;
  const Address group = Figure1::group();

  GroupReceiverApp app1(*f.recv1->stack, Figure1::kDataPort);
  GroupReceiverApp app2(*f.recv2->stack, Figure1::kDataPort);
  f.recv1->service->subscribe(group);
  f.recv2->service->subscribe(group);

  McastMetrics metrics(world.net(), world.routing(), group,
                       Figure1::kDataPort);
  metrics.update_reference_tree(
      f.link1->id(), {f.link1->id(), f.link2->id()});

  CbrSource voice(
      world.scheduler(),
      [&](Bytes payload) {
        f.sender->service->send_multicast(group, Figure1::kDataPort,
                                          Figure1::kDataPort,
                                          std::move(payload));
      },
      Time::ms(20), 160);  // 50 packets/s voice frames
  voice.start(Time::sec(1));

  // The speaker walks through the building: a move every 40 s.
  ItineraryMover mover(*f.sender->mn, world.scheduler());
  mover.add_step(Time::sec(40), *f.link2);
  mover.add_step(Time::sec(80), *f.link3);
  mover.add_step(Time::sec(120), *f.link6);

  std::uint64_t max_trees = 0;
  for (int s = 0; s <= 160; s += 5) {
    world.scheduler().schedule_at(Time::sec(s), [&, s] {
      std::uint64_t total = 0;
      for (const auto& r : world.routers()) {
        total = std::max<std::uint64_t>(total, r->pim->entry_count());
      }
      max_trees = std::max(max_trees, total);
    });
  }
  world.run_until(Time::sec(160));

  Outcome o;
  o.delivered_r1 = app1.unique_received();
  o.delivered_r2 = app2.unique_received();
  o.asserts = world.net().counters().get("pimdm/tx/assert");
  o.floods = world.net().counters().get("pimdm/sg-created");
  o.max_trees = max_trees;
  o.mn_encaps = world.net().counters().get("mn/encap");
  o.stretch = metrics.stretch();
  return o;
}

}  // namespace

int main() {
  std::printf("Mobile speaker (50 pkt/s voice) walking Link1 -> Link2 -> "
              "Link3 -> Link6; Receivers 1 and 2 listening. 8000 frames "
              "total.\n\n");

  Outcome local = run_case(
      {McastStrategy::kLocalMembership, HaRegistration::kGroupListBu});
  Outcome tunnel = run_case(
      {McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});

  Table t({"metric", "A: send locally", "B: reverse tunnel"});
  t.add_row({"frames to Receiver1", std::to_string(local.delivered_r1),
             std::to_string(tunnel.delivered_r1)});
  t.add_row({"frames to Receiver2", std::to_string(local.delivered_r2),
             std::to_string(tunnel.delivered_r2)});
  t.add_row({"PIM asserts sent", std::to_string(local.asserts),
             std::to_string(tunnel.asserts)});
  t.add_row({"(S,G) entries created", std::to_string(local.floods),
             std::to_string(tunnel.floods)});
  t.add_row({"peak concurrent (S,G) per router",
             std::to_string(local.max_trees),
             std::to_string(tunnel.max_trees)});
  t.add_row({"MN encapsulations", std::to_string(local.mn_encaps),
             std::to_string(tunnel.mn_encaps)});
  t.add_row({"routing stretch", fmt_double(local.stretch, 2),
             fmt_double(tunnel.stretch, 2)});
  std::printf("%s", t.str().c_str());

  std::printf(
      "\npaper Section 4.2.2/4.3.1: each move of a locally-sending source\n"
      "creates a brand-new flooded tree (stale trees linger for the 210 s\n"
      "data timeout) and its stale-source packets trigger asserts; the\n"
      "reverse tunnel keeps the single home-rooted tree at the price of\n"
      "encapsulating every frame.\n");
  return 0;
}
