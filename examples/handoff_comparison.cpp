// Handoff comparison: a mobile video-stream subscriber roams across the
// Figure 1 network while each of the paper's four delivery approaches is
// active in turn. Prints join delay, handoff loss, duplicates and the
// tunnel/system-load counters per approach — Section 4.3 of the paper as a
// runnable program.
//
//   $ ./examples/handoff_comparison
#include <cstdio>

#include "core/figure1.hpp"
#include "core/metrics.hpp"
#include "core/mobility.hpp"
#include "core/traffic.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

using namespace mip6;

namespace {

struct Result {
  std::string approach;
  double join_delay_s = 0;
  std::uint64_t lost = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t ha_encaps = 0;
  std::uint64_t grafts = 0;
  double stretch = 0;
};

Result run_once(StrategyOptions opts, const char* label) {
  Figure1 f = build_figure1(/*seed=*/7, {}, opts);
  World& world = *f.world;
  const Address group = Figure1::group();

  GroupReceiverApp app(*f.recv3->stack, Figure1::kDataPort);
  f.recv3->service->subscribe(group);
  McastMetrics metrics(world.net(), world.routing(), group,
                       Figure1::kDataPort);
  metrics.update_reference_tree(f.link1->id(), {f.link4->id()});

  CbrSource source(
      world.scheduler(),
      [&](Bytes payload) {
        f.sender->service->send_multicast(group, Figure1::kDataPort,
                                          Figure1::kDataPort,
                                          std::move(payload));
      },
      Time::ms(50), 200);  // 20 datagrams/s, 200-byte payload
  source.start(Time::sec(1));

  // Roam: L4 -> L6 at 30 s, L6 -> L5 at 60 s, L5 -> L2 at 90 s.
  ItineraryMover mover(*f.recv3->mn, world.scheduler());
  mover.add_step(Time::sec(30), *f.link6);
  mover.add_step(Time::sec(60), *f.link5);
  mover.add_step(Time::sec(90), *f.link2);
  std::vector<Time> move_times{Time::sec(30), Time::sec(60), Time::sec(90)};
  mover.set_on_move([&](Link& to) {
    metrics.update_reference_tree(f.link1->id(), {to.id()});
  });

  world.run_until(Time::sec(120));

  Result r;
  r.approach = label;
  Summary join;
  for (Time t : move_times) {
    if (auto first = app.first_rx_at_or_after(t)) {
      join.add((*first - t).to_seconds());
    }
  }
  r.join_delay_s = join.mean();
  std::uint64_t sent = source.sent();
  r.lost = sent > app.unique_received() ? sent - app.unique_received() : 0;
  r.duplicates = app.duplicates();
  r.ha_encaps = world.net().counters().get("ha/encap-multicast");
  r.grafts = world.net().counters().get("pimdm/tx/graft");
  r.stretch = metrics.stretch();
  return r;
}

}  // namespace

int main() {
  std::printf("Mobile receiver roaming Link4 -> Link6 -> Link5 -> Link2 "
              "while Sender S streams 20 dgrams/s.\n\n");

  std::vector<std::pair<const char*, StrategyOptions>> cases = {
      {"1 local membership",
       {McastStrategy::kLocalMembership, HaRegistration::kGroupListBu}},
      {"2 bidir tunnel (group-list BU)",
       {McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu}},
      {"2 bidir tunnel (tunneled MLD)",
       {McastStrategy::kBidirTunnel, HaRegistration::kTunnelMld}},
      {"3 tunnel MH->HA",
       {McastStrategy::kTunnelMhToHa, HaRegistration::kGroupListBu}},
      {"4 tunnel HA->MH",
       {McastStrategy::kTunnelHaToMh, HaRegistration::kGroupListBu}},
  };

  Table t({"approach", "mean join delay", "lost", "dups", "HA encaps",
           "grafts", "stretch"});
  for (const auto& [label, opts] : cases) {
    Result r = run_once(opts, label);
    t.add_row({r.approach, fmt_double(r.join_delay_s, 3) + " s",
               std::to_string(r.lost), std::to_string(r.duplicates),
               std::to_string(r.ha_encaps), std::to_string(r.grafts),
               fmt_double(r.stretch, 2)});
  }
  std::printf("%s", t.str().c_str());
  std::printf(
      "\npaper: tunnels avoid join delay at the cost of suboptimal routing\n"
      "and home-agent load; local membership is optimal but re-joins on\n"
      "every link change (unsolicited reports keep that fast here).\n");
  return 0;
}
