// Playground: explore the paper's parameter space from the command line —
// no recompilation. Runs a roaming mobile host (receiver of G1, sender of
// G2) on the Figure 1 network and prints the Section 4.3 criteria.
//
//   $ ./examples/playground [options]
//     --strategy local|bidir|mh-ha|ha-mh   delivery approach   [local]
//     --registration bu|mld                HA registration     [bu]
//     --tquery SECONDS                     MLD Query Interval  [125]
//     --no-unsolicited                     wait for Queries instead
//     --adaptive                           adaptive querier extension
//     --dwell SECONDS                      mean dwell per link [120]
//     --lifetime SECONDS                   binding lifetime    [256]
//     --state-refresh                      PIM State Refresh extension
//     --ripng                              RIPng instead of the oracle
//     --horizon SECONDS                    simulated time      [600]
//     --seed N                             RNG seed            [1]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/figure1.hpp"
#include "core/metrics.hpp"
#include "core/mobility.hpp"
#include "core/traffic.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

using namespace mip6;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--strategy local|bidir|mh-ha|ha-mh] "
               "[--registration bu|mld] [--tquery S] [--no-unsolicited] "
               "[--adaptive] [--dwell S] [--lifetime S] [--state-refresh] "
               "[--ripng] [--horizon S] [--seed N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  StrategyOptions strategy{McastStrategy::kLocalMembership,
                           HaRegistration::kGroupListBu};
  WorldConfig config;
  int tquery = 125, dwell = 120, lifetime = 256, horizon = 600;
  std::uint64_t seed = 1;
  bool unsolicited = true, adaptive = false;

  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--strategy")) {
      const char* v = value();
      if (!std::strcmp(v, "local")) {
        strategy.strategy = McastStrategy::kLocalMembership;
      } else if (!std::strcmp(v, "bidir")) {
        strategy.strategy = McastStrategy::kBidirTunnel;
      } else if (!std::strcmp(v, "mh-ha")) {
        strategy.strategy = McastStrategy::kTunnelMhToHa;
      } else if (!std::strcmp(v, "ha-mh")) {
        strategy.strategy = McastStrategy::kTunnelHaToMh;
      } else {
        usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--registration")) {
      const char* v = value();
      if (!std::strcmp(v, "bu")) {
        strategy.registration = HaRegistration::kGroupListBu;
      } else if (!std::strcmp(v, "mld")) {
        strategy.registration = HaRegistration::kTunnelMld;
      } else {
        usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--tquery")) {
      tquery = std::atoi(value());
    } else if (!std::strcmp(argv[i], "--no-unsolicited")) {
      unsolicited = false;
    } else if (!std::strcmp(argv[i], "--adaptive")) {
      adaptive = true;
    } else if (!std::strcmp(argv[i], "--dwell")) {
      dwell = std::atoi(value());
    } else if (!std::strcmp(argv[i], "--lifetime")) {
      lifetime = std::atoi(value());
    } else if (!std::strcmp(argv[i], "--state-refresh")) {
      config.pim.state_refresh = true;
    } else if (!std::strcmp(argv[i], "--ripng")) {
      config.unicast = UnicastRouting::kRipng;
    } else if (!std::strcmp(argv[i], "--horizon")) {
      horizon = std::atoi(value());
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(value(), nullptr, 10);
    } else {
      usage(argv[0]);
    }
  }
  if (tquery <= 0 || dwell <= 0 || lifetime <= 0 || horizon <= 30) {
    usage(argv[0]);
  }

  config.mld = MldConfig::with_query_interval(Time::sec(tquery));
  config.mld.adaptive_querier = adaptive;
  config.mld_host.unsolicited_reports = unsolicited;
  config.mipv6.binding_lifetime = Time::sec(lifetime);
  config.mipv6.bu_refresh_interval = Time::sec(lifetime / 2);

  std::printf("strategy=%s registration=%s T_Query=%ds unsolicited=%s "
              "adaptive=%s dwell=%ds lifetime=%ds state_refresh=%s "
              "unicast=%s horizon=%ds seed=%llu\n\n",
              strategy_name(strategy.strategy),
              strategy.registration == HaRegistration::kGroupListBu
                  ? "group-list-bu"
                  : "tunneled-mld",
              tquery, unsolicited ? "yes" : "no", adaptive ? "yes" : "no",
              dwell, lifetime, config.pim.state_refresh ? "on" : "off",
              config.unicast == UnicastRouting::kRipng ? "ripng" : "oracle",
              horizon, static_cast<unsigned long long>(seed));

  Figure1 f = build_figure1(seed, config, strategy);
  World& world = *f.world;
  const Address g1 = Address::parse("ff1e::1");
  const Address g2 = Address::parse("ff1e::2");
  constexpr std::uint16_t kPort = Figure1::kDataPort;

  GroupReceiverApp mh_app(*f.recv3->stack, kPort);
  GroupReceiverApp r2_app(*f.recv2->stack, kPort);
  f.recv3->service->subscribe(g1);
  f.recv1->service->subscribe(g1);
  f.recv2->service->subscribe(g2);

  McastMetrics metrics(world.net(), world.routing(), g1, kPort);
  metrics.update_reference_tree(f.link1->id(),
                                {f.link1->id(), f.link4->id()});

  CbrSource s_source(
      world.scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(g1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  CbrSource mh_source(
      world.scheduler(),
      [&](Bytes p) {
        f.recv3->service->send_multicast(g2, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  s_source.start(Time::sec(1));
  mh_source.start(Time::sec(1));

  std::vector<Link*> links;
  for (int n = 1; n <= 6; ++n) links.push_back(&f.link(n));
  RandomMover mover(*f.recv3->mn, world.net().rng(), links,
                    Time::sec(dwell));
  std::vector<Time> move_times;
  mover.set_on_move([&](Link& to) {
    move_times.push_back(world.now());
    metrics.update_reference_tree(f.link1->id(),
                                  {f.link1->id(), to.id()});
  });
  mover.start(Time::sec(20));
  world.run_until(Time::sec(horizon));

  Summary join;
  for (Time t : move_times) {
    if (auto first = mh_app.first_rx_at_or_after(t)) {
      join.add((*first - t).to_seconds());
    }
  }
  auto& c = world.net().counters();
  double sent1 = static_cast<double>(s_source.sent());
  double sent2 = static_cast<double>(mh_source.sent());

  Table t({"criterion (Section 4.3)", "value"});
  t.add_row({"moves", std::to_string(mover.moves())});
  t.add_row({"join delay (mean / max)",
             fmt_double(join.mean(), 3) + " / " + fmt_double(join.max(), 3) +
                 " s"});
  t.add_row({"receive loss",
             fmt_double(100.0 * (sent1 - static_cast<double>(
                                             mh_app.unique_received())) /
                            sent1,
                        2) + " %"});
  t.add_row({"send loss (to Receiver 2)",
             fmt_double(100.0 * (sent2 - static_cast<double>(
                                             r2_app.unique_received())) /
                            sent2,
                        2) + " %"});
  t.add_row({"wasted bandwidth",
             fmt_bytes(static_cast<double>(metrics.wasted_bytes()))});
  t.add_row({"routing stretch", fmt_double(metrics.stretch(), 2)});
  t.add_row({"tunneled bytes",
             fmt_bytes(static_cast<double>(metrics.tunneled_bytes()))});
  t.add_row({"HA load (encap+decap ops)",
             std::to_string(c.get("ha/encap-multicast") +
                            c.get("ha/encap-unicast") + c.get("ha/decap"))});
  t.add_row({"MH load (encap+decap ops)",
             std::to_string(c.get("mn/encap") + c.get("mn/decap"))});
  t.add_row({"PIM asserts", std::to_string(c.get("pimdm/tx/assert"))});
  t.add_row({"(S,G) entries created",
             std::to_string(c.get("pimdm/sg-created"))});
  t.add_row({"control bytes (PIM+MLD+BU+RIPng)",
             fmt_bytes(static_cast<double>(
                 c.get("pimdm/tx-bytes") + c.get("mld/tx-bytes") +
                 c.get("mn/bu-bytes") + c.get("ripng/tx-bytes")))});
  std::printf("%s", t.str().c_str());
  return 0;
}
