// FIG2 — mobile receiver, approach A (local group membership on the
// foreign link): Receiver 3 moves from Link 4 to the pruned Link 6. The
// bench reproduces both delays the paper attaches to this figure:
//   * join delay — until Router E grafts, after the MN's Report (compared
//     for unsolicited Reports vs waiting for the next Query), and
//   * leave delay — Router D keeps forwarding onto the deserted Link 4
//     until the MLD listener times out (up to T_MLI = 260 s).
#include "common.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

struct Outcome {
  Time join_delay;
  Time leave_delay;
  std::uint64_t wasted_tx_on_l4;
  bool tree_extended;
};

Outcome run(bool unsolicited, std::uint64_t seed) {
  WorldConfig config;
  config.mld_host.unsolicited_reports = unsolicited;
  Fig1Harness h({McastStrategy::kLocalMembership, HaRegistration::kGroupListBu},
                seed, config);
  h.subscribe_all();
  h.source->start(Time::sec(1));
  // Randomize the move's phase against the 125 s query schedule: the
  // query-wait join delay is uniform over the interval, not a constant.
  Rng phase(Rng::derive_seed(seed, 0xf16));
  const Time move_at =
      Time::sec(30) + Time::seconds(phase.uniform(0.0, 125.0));
  h.world().scheduler().schedule_at(
      move_at, [&h] { h.f.recv3->mn->move_to(*h.f.link6); });
  h.world().run_until(move_at + Time::sec(310));

  Outcome o;
  auto first = h.app3->first_rx_at_or_after(move_at);
  o.join_delay = first ? *first - move_at : Time::never();
  Time last_l4 = h.metrics->last_data_tx_on(h.f.link4->id());
  o.leave_delay = last_l4.is_never() ? Time::zero() : last_l4 - move_at;
  // Wasted transmissions: group data put onto Link 4 after the receiver
  // left it.
  o.wasted_tx_on_l4 = 0;
  const Address s = h.f.sender->mn->home_address();
  o.tree_extended = false;
  for (IfaceId oif : h.f.e->pim->outgoing(s, h.group)) {
    if (h.f.e->node->iface_by_id(oif).link() == h.f.link6) {
      o.tree_extended = true;
    }
  }
  return o;
}

}  // namespace

int main() {
  header("FIG2: mobile receiver with local group membership",
         "Receiver 3 moves Link4 -> Link6 at t=30 s (10 dgram/s stream)");

  Table t({"MLD host behaviour", "join delay", "leave delay (Link4)",
           "tree extended to Link6"});
  Summary join_unsol, join_wait;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    join_unsol.add(run(true, seed).join_delay.to_seconds());
    join_wait.add(run(false, seed).join_delay.to_seconds());
  }
  Outcome with = run(true, 1);
  Outcome without = run(false, 1);
  t.add_row({"unsolicited Reports (paper's recommendation)",
             fmt_double(join_unsol.mean(), 3) + " s (max " +
                 fmt_double(join_unsol.max(), 3) + ")",
             secs(with.leave_delay, 1), with.tree_extended ? "yes" : "no"});
  t.add_row({"wait for next Query (T_Query=125 s default)",
             fmt_double(join_wait.mean(), 1) + " s (max " +
                 fmt_double(join_wait.max(), 1) + ")",
             secs(without.leave_delay, 1),
             without.tree_extended ? "yes" : "no"});
  std::printf("%s\n", t.str().c_str());

  paper_note(
      "\"only when Router E receives a REPORT ... it will graft\"; with the "
      "default timers a receiver waiting for the next Query can wait up to "
      "T_Query+T_RespDel (135 s), while unsolicited Reports make the join "
      "delay a protocol round-trip. Router D keeps forwarding onto Link 4 "
      "for up to T_MLI = 260 s (leave delay), wasting bandwidth (Fig. 2).");
  return 0;
}
