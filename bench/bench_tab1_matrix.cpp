// TAB1 — Table 1 of the paper: the 2x2 matrix of approaches for a mobile
// host that both sends and receives multicast, extended with the two
// post-paper approaches (hier-proxy, mcast-mobility) as rows 5-6. The
// mobile host (Receiver 3
// in Fig. 1) subscribes to group G1 (streamed by Sender S) and itself
// streams to group G2 (subscribed by Receiver 2); it then moves to the
// pruned Link 6. Every cell of the matrix must keep both directions
// working; the mechanics columns show which machinery carried the traffic.
#include "common.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

struct CellResult {
  bool receives_ok;
  bool sends_ok;
  std::uint64_t ha_encaps;   // HA -> MH tunnel use (receive side)
  std::uint64_t mn_encaps;   // MH -> HA tunnel use (send side)
  std::uint64_t grafts;      // local membership mechanics
  std::uint64_t new_trees;   // care-of-rooted (S,G) state
};

CellResult run_cell(McastStrategy strategy) {
  Figure1 f = build_figure1(/*seed=*/5, {},
                            {strategy, HaRegistration::kGroupListBu});
  World& world = *f.world;
  const Address g1 = Address::parse("ff1e::1");  // S -> everyone
  const Address g2 = Address::parse("ff1e::2");  // mobile host -> R2

  GroupReceiverApp mh_app(*f.recv3->stack, kPort);
  GroupReceiverApp r2_app(*f.recv2->stack, kPort);
  f.recv3->service->subscribe(g1);
  f.recv2->service->subscribe(g2);

  CbrSource s_source(
      world.scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(g1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  CbrSource mh_source(
      world.scheduler(),
      [&](Bytes p) {
        f.recv3->service->send_multicast(g2, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  s_source.start(Time::sec(1));
  mh_source.start(Time::sec(1));

  world.scheduler().schedule_at(Time::sec(30),
                                [&] { f.recv3->mn->move_to(*f.link6); });
  world.run_until(Time::sec(90));

  CellResult r;
  // "ok" = the stream kept flowing after the handoff settled.
  r.receives_ok = mh_app.received_in(Time::sec(40), Time::sec(90)) > 400;
  r.sends_ok = r2_app.received_in(Time::sec(40), Time::sec(90)) > 400;
  auto& c = world.net().counters();
  r.ha_encaps = c.get("ha/encap-multicast");
  r.mn_encaps = c.get("mn/encap");
  r.grafts = c.get("pimdm/tx/graft");
  const Address coa = f.recv3->mn->care_of();
  r.new_trees = 0;
  for (const auto& router : world.routers()) {
    if (!coa.is_unspecified() && router->pim->has_entry(coa, g2)) {
      ++r.new_trees;
    }
  }
  return r;
}

}  // namespace

int main() {
  header("TAB1: the approach matrix (paper's four + two post-paper)",
         "mobile host both sends (G2) and receives (G1); move L4 -> L6 at "
         "t=30 s");

  struct Row {
    const char* label;
    McastStrategy strategy;
  };
  const Row rows[] = {
      {"1 local membership            (send local,  recv local)",
       McastStrategy::kLocalMembership},
      {"2 bi-directional tunnel       (send tunnel, recv tunnel)",
       McastStrategy::kBidirTunnel},
      {"3 uni-dir tunnel MH->HA       (send tunnel, recv local)",
       McastStrategy::kTunnelMhToHa},
      {"4 uni-dir tunnel HA->MH       (send local,  recv tunnel)",
       McastStrategy::kTunnelHaToMh},
      {"5 hierarchical proxy          (send tunnel, recv proxy)",
       McastStrategy::kHierProxy},
      {"6 multicast-based mobility    (send local,  recv mcast CoA)",
       McastStrategy::kMcastMobility},
  };

  Table t({"approach", "recv ok", "send ok", "HA->MH encaps",
           "MH->HA encaps", "grafts", "CoA-rooted trees"});
  for (const Row& row : rows) {
    CellResult r = run_cell(row.strategy);
    t.add_row({row.label, r.receives_ok ? "yes" : "NO",
               r.sends_ok ? "yes" : "NO", std::to_string(r.ha_encaps),
               std::to_string(r.mn_encaps), std::to_string(r.grafts),
               std::to_string(r.new_trees)});
  }
  std::printf("%s\n", t.str().c_str());

  paper_note(
      "Table 1: combining the two receive options (A local / B tunnel) "
      "with the two send options yields the four approaches; all four "
      "deliver, differing only in which machinery (grafts vs tunnels vs "
      "new care-of-rooted trees) does the work. Rows 5-6 extend the "
      "matrix with the hierarchical domain proxy and multicast-based "
      "mobility; both must keep the same two streams flowing.");
  return 0;
}
