// ABL1 — ablation on the PIM-DM Prune Delay Time T_PruneDel (default 3 s,
// Section 4.3.1). The paper names it as one of the factors in the
// bandwidth wasted while a mobile sender's new flood is pruned back; this
// sweep varies it on a 12-router backbone with a roaming local sender.
// The final row demonstrates the correctness edge: if the Join-override
// window does not fit inside the prune delay, a downstream router that
// still needs traffic is cut off on shared LANs until it grafts back.
#include "common.hpp"
#include "core/random_topology.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

const Address kGroup = Address::parse("ff1e::21");

ReplicationResult run(std::uint64_t seed, Time prune_delay,
                      Time override_window) {
  RandomTopologyParams params;
  params.routers = 12;
  params.extra_links = 2;
  params.seed = seed;
  WorldConfig config;
  config.pim.prune_delay = prune_delay;
  config.pim.join_override_window = override_window;
  RandomTopology topo = build_random_topology(params, config);
  World& world = *topo.world;

  NodeRuntime& sender = world.add_host(
      "S", *topo.stub_links[0],
      {McastStrategy::kLocalMembership, HaRegistration::kGroupListBu});
  NodeRuntime& m1 = world.add_host("M1", *topo.stub_links[3]);
  NodeRuntime& m2 = world.add_host("M2", *topo.stub_links[7]);
  world.finalize();

  GroupReceiverApp app1(*m1.stack, kPort);
  GroupReceiverApp app2(*m2.stack, kPort);
  m1.service->subscribe(kGroup);
  m2.service->subscribe(kGroup);

  McastMetrics metrics(world.net(), world.routing(), kGroup, kPort);
  const std::vector<LinkId> members{topo.stub_links[3]->id(),
                                    topo.stub_links[7]->id()};
  metrics.update_reference_tree(topo.stub_links[0]->id(), members);

  CbrSource source(
      world.scheduler(),
      [&](Bytes p) {
        sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(50), 200);
  source.start(Time::sec(1));

  std::vector<Link*> roam(topo.stub_links.begin(), topo.stub_links.end());
  RandomMover mover(*sender.mn, world.net().rng(), roam, Time::sec(60));
  mover.set_on_move(
      [&](Link& to) { metrics.update_reference_tree(to.id(), members); });
  mover.start(Time::sec(30));
  world.run_until(Time::sec(400));

  double sent = static_cast<double>(source.sent());
  auto& c = world.net().counters();
  ReplicationResult r;
  r["wasted_kib"] = static_cast<double>(metrics.wasted_bytes()) / 1024.0;
  r["overrides"] = static_cast<double>(c.get("pimdm/prune-overridden"));
  r["grafts"] = static_cast<double>(c.get("pimdm/tx/graft"));
  r["m1_loss_pct"] =
      100.0 * (sent - static_cast<double>(app1.unique_received())) / sent;
  r["m2_loss_pct"] =
      100.0 * (sent - static_cast<double>(app2.unique_received())) / sent;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  header("ABL1: Prune Delay Time sweep (T_PruneDel)",
         "12-router backbone, roaming local sender (dwell 60 s), 20 "
         "dgram/s, 400 s horizon");

  Table t({"T_PruneDel", "override window", "wasted bw", "overrides",
           "grafts", "M1 loss", "M2 loss"});
  for (int ms : {300, 1000, 3000, 10000}) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 99;
    Time window = Time::ns(Time::ms(ms).nanos() * 8 / 10);
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run(seed, Time::ms(ms), window);
    });
    t.add_row({fmt_double(ms / 1000.0, 1) + " s",
               fmt_double(window.to_seconds(), 2) + " s",
               fmt_double(m.at("wasted_kib").mean(), 0) + " KiB",
               fmt_double(m.at("overrides").mean(), 1),
               fmt_double(m.at("grafts").mean(), 1),
               fmt_double(m.at("m1_loss_pct").mean(), 1) + " %",
               fmt_double(m.at("m2_loss_pct").mean(), 1) + " %"});
  }
  std::printf("%s\n", t.str().c_str());

  // Correctness edge on a shared LAN (source--U--LB--{D1,D2}, member behind
  // D2, nothing behind D1): D1's prune must be overridden by D2's Join
  // within T_PruneDel, or U cuts the LAN off and the member starves until
  // dense mode re-floods.
  std::printf("--- Join-override window vs prune delay (shared-LAN "
              "correctness) ---\n");
  Table t2({"T_PruneDel", "override window", "overrides", "member loss"});
  auto shared_lan = [&](Time prune_delay, Time window) {
    WorldConfig config;
    config.pim.prune_delay = prune_delay;
    config.pim.join_override_window = window;
    World world(1, config);
    Link& la = world.add_link("LA");
    Link& lb = world.add_link("LB");
    Link& lc = world.add_link("LC");
    Link& ld = world.add_link("LD");
    world.add_router("U", {&la, &lb});
    world.add_router("D1", {&lb, &lc});
    world.add_router("D2", {&lb, &ld});
    NodeRuntime& src = world.add_host("S", la);
    NodeRuntime& member = world.add_host("M", ld);
    world.finalize();
    GroupReceiverApp app(*member.stack, kPort);
    member.service->subscribe(kGroup);
    CbrSource source(
        world.scheduler(),
        [&](Bytes p) {
          src.service->send_multicast(kGroup, kPort, kPort, std::move(p));
        },
        Time::ms(50), 200);
    source.start(Time::sec(1));
    world.run_until(Time::sec(120));
    double sent = static_cast<double>(source.sent());
    double loss =
        100.0 * (sent - static_cast<double>(app.unique_received())) / sent;
    t2.add_row({fmt_double(prune_delay.to_seconds(), 1) + " s",
                fmt_double(window.to_seconds(), 2) + " s",
                std::to_string(
                    world.net().counters().get("pimdm/prune-overridden")),
                fmt_double(loss, 1) + " %"});
  };
  shared_lan(Time::ms(3000), Time::ms(2500));  // spec-conformant
  shared_lan(Time::ms(300), Time::ms(2500));   // window > delay: broken
  std::printf("%s\n", t2.str().c_str());

  paper_note(
      "Section 4.3.1: \"the wasted capacity depends mainly on the bit rate "
      "of the sender, the PIM-DM Prune Delay Time (default 3 s), the "
      "number of links to be pruned, and the mobility rate\" — a longer "
      "T_PruneDel keeps flooded branches alive longer (more waste); the "
      "shared-LAN rows show why the Join-override window must fit inside "
      "it — a late override leaves a repeating outage window (losses "
      "instead of a clean override).");
  return 0;
}
