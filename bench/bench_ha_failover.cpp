// ABL4 — home-agent redundancy (the paper's "further work" citation [10]:
// HA redundancy and load balancing). A bidirectional-tunnel receiver hangs
// off home agent HA1 while HA2 replicates its bindings; HA1 dies mid-
// stream. The sweep varies the heartbeat interval and measures the
// multicast outage until HA2's takeover restores the tunnel — the
// availability knob the paper's single-HA analysis leaves open.
#include "common.hpp"
#include "fault/chaos.hpp"
#include "ipv6/udp_demux.hpp"
#include "mipv6/ha_redundancy.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

const Address kGroup = Address::parse("ff1e::60");

ReplicationResult run(std::uint64_t seed, Time heartbeat, int threshold) {
  World world(seed);
  Link& hl = world.add_link("HL");
  Link& tl = world.add_link("TL");
  Link& fl = world.add_link("FL");
  NodeRuntime& ha1 = world.add_router("HA1", {&hl, &tl});
  NodeRuntime& ha2 = world.add_router("HA2", {&hl, &tl});
  world.add_router("FR", {&tl, &fl});
  NodeRuntime& mn = world.add_host(
      "MN", hl, {McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  NodeRuntime& src = world.add_host("SRC", hl);
  world.finalize();

  HaRedundancyConfig rc;
  rc.heartbeat_interval = heartbeat;
  rc.failure_threshold = threshold;
  HaRedundancy red1(*ha1.stack, *ha1.ha, *ha1.udp, ha1.iface_on(hl),
                    ha1.address_on(hl), rc);
  HaRedundancy red2(*ha2.stack, *ha2.ha, *ha2.udp, ha2.iface_on(hl),
                    ha2.address_on(hl), rc);
  red1.add_peer(ha2.address_on(hl), {ha2.address_on(hl), ha2.address_on(tl)});
  red2.add_peer(ha1.address_on(hl), {ha1.address_on(hl), ha1.address_on(tl)});

  GroupReceiverApp app(*mn.stack, kPort);
  mn.service->subscribe(kGroup);
  CbrSource source(
      world.scheduler(),
      [&](Bytes p) {
        src.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(50), 200);
  source.start(Time::sec(1));
  mn.mn->move_to(fl);

  // HA1 dies through the fault plan: bindings and protocol soft state are
  // wiped and the node powers off, exactly what a real crash leaves behind.
  const Time death = Time::sec(20);
  ChaosEngine chaos(world,
                    FaultPlan().router_crash(death, "HA1"));
  chaos.arm();
  world.run_until(Time::sec(120));

  ReplicationResult r;
  auto recs = chaos.recoveries(app);
  r["outage_s"] = !recs.empty() && recs[0].recovery_time()
                      ? recs[0].recovery_time()->to_seconds()
                      : 100.0;
  r["sync_bytes"] = static_cast<double>(
      world.net().counters().get("hasync/tx-bytes"));
  r["takeover"] = red2.takeovers() > 0 ? 1.0 : 0.0;
  double sent = static_cast<double>(source.sent());
  r["loss_pct"] =
      100.0 * (sent - static_cast<double>(app.unique_received())) / sent;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  header("ABL4: home-agent failover (paper's further-work extension)",
         "bidir-tunnel receiver, HA1 dies at t=20 s with HA2 as hot "
         "standby; 20 dgram/s stream");

  Table t({"heartbeat", "threshold", "detection bound", "measured outage",
           "stream loss", "sync traffic"});
  struct Case {
    int hb_ms;
    int threshold;
  };
  for (Case c : {Case{500, 3}, Case{1000, 3}, Case{2000, 3}, Case{5000, 3}}) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 11;
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run(seed, Time::ms(c.hb_ms), c.threshold);
    });
    t.add_row({fmt_double(c.hb_ms / 1000.0, 1) + " s",
               std::to_string(c.threshold),
               fmt_double(c.hb_ms / 1000.0 * c.threshold, 1) + " s",
               fmt_double(m.at("outage_s").mean(), 2) + " s",
               fmt_double(m.at("loss_pct").mean(), 1) + " %",
               fmt_bytes(m.at("sync_bytes").mean())});
  }
  std::printf("%s\n", t.str().c_str());

  paper_note(
      "beyond the paper (its cited further work [10]): with binding "
      "replication and VRRP-style address takeover, the multicast outage "
      "after a home-agent failure is bounded by heartbeat_interval x "
      "failure_threshold plus one tree-repair round trip, for a few bytes "
      "per second of sync traffic — addressing the single-point-of-failure "
      "the tunnel approaches otherwise introduce.");
  return 0;
}
