// FIG1 — Figure 1 of the paper: the initial source-rooted multicast
// distribution tree. Sender S on Link 1 streams to group G with Receivers
// 1 (Link1), 2 (Link2) and 3 (Link4) subscribed; after dense-mode flooding
// and pruning, the tree must cover Links 1-4 and exclude Links 5 and 6,
// with a single elected forwarder on the B/C parallel segment.
#include "common.hpp"
#include "report.hpp"

using namespace mip6;
using namespace mip6::bench;

int main() {
  header("FIG1: initial multicast distribution tree",
         "Fig. 1 topology, S streaming 10 dgram/s, all receivers at home");

  // The 120 s horizon executes in ~15 ms of wall clock — far too short for
  // one timing to mean anything. Repeat the whole run and report the best
  // rep: min-of-N is the standard estimator for the noise-free cost.
  const int reps = smoke_mode() ? 1 : 9;
  double wall = 0.0;
  double best_ns = 0.0;
  std::unique_ptr<Fig1Harness> kept;
  for (int rep = 0; rep < reps; ++rep) {
    auto h = std::make_unique<Fig1Harness>();
    h->subscribe_all();
    h->metrics->update_reference_tree(
        h->f.link1->id(),
        {h->f.link1->id(), h->f.link2->id(), h->f.link4->id()});
    h->source->start(Time::sec(1));
    WallTimer timer;
    h->world().run_until(Time::sec(120));
    double rep_wall = timer.elapsed_s();
    double events =
        static_cast<double>(h->world().scheduler().executed_events());
    double ns = events > 0 ? rep_wall * 1e9 / events : 0.0;
    if (rep == 0 || ns < best_ns) {
      best_ns = ns;
      wall = rep_wall;
    }
    kept = std::move(h);
  }
  Fig1Harness& h = *kept;

  const Address s = h.f.sender->mn->home_address();
  Table trees({"router", "(S,G) entry", "incoming link", "forwards onto"});
  for (const auto& r : h.world().routers()) {
    std::string in = "-", out;
    bool has = r->pim->has_entry(s, h.group);
    if (has) {
      IfaceId inc = r->pim->incoming(s, h.group);
      in = r->node->iface_by_id(inc).link()->name();
      for (IfaceId oif : r->pim->outgoing(s, h.group)) {
        if (!out.empty()) out += " ";
        Link* l = r->node->iface_by_id(oif).link();
        out += l != nullptr ? l->name() : "?";
      }
    }
    trees.add_row({r->node->name(), has ? "yes" : "no", in,
                   out.empty() ? "-" : out});
  }
  std::printf("%s\n", trees.str().c_str());

  Table links({"link", "on paper's tree", "data transmissions", "stretch share"});
  bool on_tree[7] = {false, true, true, true, true, false, false};
  for (int n = 1; n <= 6; ++n) {
    std::uint64_t tx = h.metrics->data_tx_count_on(h.f.link(n).id());
    links.add_row({h.f.link(n).name(), on_tree[n] ? "yes" : "no",
                   std::to_string(tx),
                   fmt_double(100.0 * static_cast<double>(tx) /
                                  static_cast<double>(
                                      h.metrics->data_transmissions()),
                              1) + "%"});
  }
  std::printf("%s\n", links.str().c_str());

  std::printf("delivery: R1=%llu R2=%llu R3=%llu of %u sent; "
              "steady-state stretch=%s\n",
              static_cast<unsigned long long>(h.app1->unique_received()),
              static_cast<unsigned long long>(h.app2->unique_received()),
              static_cast<unsigned long long>(h.app3->unique_received()),
              h.source->sent(), fmt_double(h.metrics->stretch(), 3).c_str());
  std::printf("asserts on the B/C parallel segment: %llu (single forwarder "
              "elected)\n\n",
              static_cast<unsigned long long>(
                  h.counters().get("pimdm/tx/assert")));
  BenchReport report("fig1_tree");
  report.record_run(wall,
                    static_cast<double>(
                        h.world().scheduler().executed_events()));
  report.metric("reps", reps);
  report.metric("packets_forwarded",
                static_cast<double>(h.counters().get("pimdm/data-fwd")));
  report.metric("delivered",
                static_cast<double>(h.app1->unique_received() +
                                    h.app2->unique_received() +
                                    h.app3->unique_received()));
  report.write();

  paper_note(
      "the loop-free tree connects S to all members over Links 1-4; "
      "Links 5 and 6 carry no group data (Fig. 1 shading); duplicate "
      "forwarders on a LAN are resolved by the Assert election (Sec. 3.1).");
  return 0;
}
