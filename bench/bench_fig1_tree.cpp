// FIG1 — Figure 1 of the paper: the initial source-rooted multicast
// distribution tree. Sender S on Link 1 streams to group G with Receivers
// 1 (Link1), 2 (Link2) and 3 (Link4) subscribed; after dense-mode flooding
// and pruning, the tree must cover Links 1-4 and exclude Links 5 and 6,
// with a single elected forwarder on the B/C parallel segment.
#include "common.hpp"

using namespace mip6;
using namespace mip6::bench;

int main() {
  header("FIG1: initial multicast distribution tree",
         "Fig. 1 topology, S streaming 10 dgram/s, all receivers at home");

  Fig1Harness h;
  h.subscribe_all();
  h.metrics->update_reference_tree(
      h.f.link1->id(),
      {h.f.link1->id(), h.f.link2->id(), h.f.link4->id()});
  h.source->start(Time::sec(1));
  h.world().run_until(Time::sec(120));

  const Address s = h.f.sender->mn->home_address();
  Table trees({"router", "(S,G) entry", "incoming link", "forwards onto"});
  for (const auto& r : h.world().routers()) {
    std::string in = "-", out;
    bool has = r->pim->has_entry(s, h.group);
    if (has) {
      IfaceId inc = r->pim->incoming(s, h.group);
      in = r->node->iface_by_id(inc).link()->name();
      for (IfaceId oif : r->pim->outgoing(s, h.group)) {
        if (!out.empty()) out += " ";
        Link* l = r->node->iface_by_id(oif).link();
        out += l != nullptr ? l->name() : "?";
      }
    }
    trees.add_row({r->node->name(), has ? "yes" : "no", in,
                   out.empty() ? "-" : out});
  }
  std::printf("%s\n", trees.str().c_str());

  Table links({"link", "on paper's tree", "data transmissions", "stretch share"});
  bool on_tree[7] = {false, true, true, true, true, false, false};
  for (int n = 1; n <= 6; ++n) {
    std::uint64_t tx = h.metrics->data_tx_count_on(h.f.link(n).id());
    links.add_row({h.f.link(n).name(), on_tree[n] ? "yes" : "no",
                   std::to_string(tx),
                   fmt_double(100.0 * static_cast<double>(tx) /
                                  static_cast<double>(
                                      h.metrics->data_transmissions()),
                              1) + "%"});
  }
  std::printf("%s\n", links.str().c_str());

  std::printf("delivery: R1=%llu R2=%llu R3=%llu of %u sent; "
              "steady-state stretch=%s\n",
              static_cast<unsigned long long>(h.app1->unique_received()),
              static_cast<unsigned long long>(h.app2->unique_received()),
              static_cast<unsigned long long>(h.app3->unique_received()),
              h.source->sent(), fmt_double(h.metrics->stretch(), 3).c_str());
  std::printf("asserts on the B/C parallel segment: %llu (single forwarder "
              "elected)\n\n",
              static_cast<unsigned long long>(
                  h.counters().get("pimdm/tx/assert")));
  paper_note(
      "the loop-free tree connects S to all members over Links 1-4; "
      "Links 5 and 6 carry no group data (Fig. 1 shading); duplicate "
      "forwarders on a LAN are resolved by the Assert election (Sec. 3.1).");
  return 0;
}
