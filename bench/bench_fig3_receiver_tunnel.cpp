// FIG3 — mobile receiver, approach B (group membership on the home link
// via the HA tunnel): Receiver 3 registers its groups with home agent
// Router D (Multicast Group List Sub-Option in the Binding Update) and
// moves to Link 1. Data reaches the home link over the unchanged tree and
// is tunneled D -> Receiver 3, crossing some links twice.
#include "common.hpp"

using namespace mip6;
using namespace mip6::bench;

int main() {
  header("FIG3: mobile receiver via home-agent tunnel",
         "Receiver 3 (bidir tunnel, group-list BU) moves Link4 -> Link1");

  Fig1Harness h({McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  h.subscribe_all();
  h.source->start(Time::sec(1));
  const Time move_at = Time::sec(30);
  h.world().scheduler().schedule_at(
      move_at, [&h] { h.f.recv3->mn->move_to(*h.f.link1); });
  // Reference tree for the post-move phase: members on L1, L2, L4 (the HA
  // still represents R3 on its home link L4).
  h.world().scheduler().schedule_at(Time::sec(31), [&h] {
    h.metrics->update_reference_tree(
        h.f.link1->id(),
        {h.f.link1->id(), h.f.link2->id(), h.f.link1->id()});
  });
  h.world().run_until(Time::sec(120));

  auto first = h.app3->first_rx_at_or_after(move_at);
  Time join_delay = first ? *first - move_at : Time::never();

  Table t({"quantity", "measured", "paper's expectation"});
  t.add_row({"join delay after move", secs(join_delay),
             "handoff signalling only (no MLD wait)"});
  t.add_row({"binding at Router D",
             h.f.d->ha->cache().size() > 0 ? "present (with group list)"
                                           : "absent",
             "HA becomes member on MN's behalf"});
  t.add_row({"HA represents group",
             h.f.d->ha->represents(h.group) ? "yes" : "no", "yes"});
  t.add_row({"HA multicast encapsulations",
             std::to_string(h.counters().get("ha/encap-multicast")),
             "> 0 (every group datagram tunneled)"});
  t.add_row({"MN decapsulations",
             std::to_string(h.counters().get("mn/decap")), "> 0"});
  t.add_row({"tunneled group bytes",
             fmt_bytes(static_cast<double>(h.metrics->tunneled_bytes())),
             "> 0"});
  t.add_row({"datagrams to Receiver 3",
             std::to_string(h.app3->unique_received()), "stream continues"});
  t.add_row({"routing stretch (post-move tunnel path)",
             fmt_double(h.metrics->stretch(), 2),
             "> 1: datagrams cross links/routers twice"});
  std::printf("%s\n", t.str().c_str());

  paper_note(
      "the tunnel D->Link1 retraces links already used by the tree "
      "(Fig. 3), so routing is suboptimal; in exchange the mobile receiver "
      "sees no MLD join delay — only binding-update latency (Sec. 4.3.2).");
  return 0;
}
