// ABL3 — State Refresh ablation (extension beyond the paper's draft-03).
// Dense mode's prune holdtime makes every (S,G) tree re-flood the whole
// network every 210 s; the SEND43/TMR44 waste numbers carry that floor.
// The State Refresh extension (adopted by later PIM-DM drafts / RFC 3973)
// replaces the re-flood with a periodic control wave. This bench measures
// what that buys on the 12-router backbone — data waste vs added control
// bytes — for both a static and a roaming local sender, connecting the
// paper's analysis to the protocol's eventual evolution.
#include "common.hpp"
#include "core/random_topology.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

const Address kGroup = Address::parse("ff1e::30");

ReplicationResult run(std::uint64_t seed, bool state_refresh, bool roaming) {
  RandomTopologyParams params;
  params.routers = 12;
  params.extra_links = 2;
  params.seed = seed;
  WorldConfig config;
  config.pim.state_refresh = state_refresh;
  RandomTopology topo = build_random_topology(params, config);
  World& world = *topo.world;

  NodeRuntime& sender = world.add_host("S", *topo.stub_links[0]);
  NodeRuntime& m1 = world.add_host("M1", *topo.stub_links[3]);
  NodeRuntime& m2 = world.add_host("M2", *topo.stub_links[7]);
  world.finalize();

  GroupReceiverApp app1(*m1.stack, kPort);
  m1.service->subscribe(kGroup);
  m2.service->subscribe(kGroup);

  McastMetrics metrics(world.net(), world.routing(), kGroup, kPort);
  const std::vector<LinkId> members{topo.stub_links[3]->id(),
                                    topo.stub_links[7]->id()};
  metrics.update_reference_tree(topo.stub_links[0]->id(), members);

  CbrSource source(
      world.scheduler(),
      [&](Bytes p) {
        sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(50), 200);
  source.start(Time::sec(1));

  std::unique_ptr<RandomMover> mover;
  if (roaming) {
    std::vector<Link*> roam(topo.stub_links.begin(), topo.stub_links.end());
    mover = std::make_unique<RandomMover>(*sender.mn, world.net().rng(),
                                          roam, Time::sec(120));
    mover->set_on_move([&](Link& to) {
      metrics.update_reference_tree(to.id(), members);
    });
    mover->start(Time::sec(30));
  }
  world.run_until(Time::sec(900));

  auto& c = world.net().counters();
  double sent = static_cast<double>(source.sent());
  ReplicationResult r;
  r["wasted_kib"] = static_cast<double>(metrics.wasted_bytes()) / 1024.0;
  r["refloods"] = static_cast<double>(c.get("pimdm/prune-expired"));
  r["pim_ctrl_kib"] = static_cast<double>(c.get("pimdm/tx-bytes")) / 1024.0;
  r["sr_msgs"] = static_cast<double>(c.get("pimdm/tx/state-refresh"));
  r["loss_pct"] =
      100.0 * (sent - static_cast<double>(app1.unique_received())) / sent;
  return r;
}

void sweep(const char* label, bool roaming, std::size_t reps) {
  std::printf("--- %s ---\n", label);
  Table t({"state refresh", "prune expiries (refloods)", "wasted bw",
           "PIM control", "SR messages", "M1 loss"});
  for (bool sr : {false, true}) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 555;
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run(seed, sr, roaming);
    });
    t.add_row({sr ? "on (60 s waves)" : "off (draft-03 baseline)",
               fmt_double(m.at("refloods").mean(), 1),
               fmt_double(m.at("wasted_kib").mean(), 0) + " KiB",
               fmt_double(m.at("pim_ctrl_kib").mean(), 1) + " KiB",
               fmt_double(m.at("sr_msgs").mean(), 0),
               fmt_double(m.at("loss_pct").mean(), 1) + " %"});
  }
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  header("ABL3: PIM-DM State Refresh extension",
         "12-router backbone, 20 dgram/s * 200 B, 900 s horizon");

  sweep("static sender", /*roaming=*/false, reps);
  sweep("roaming local sender (mean dwell 120 s)", /*roaming=*/true, reps);

  paper_note(
      "extension beyond the paper: draft-03 dense mode re-floods every "
      "(S,G) tree each prune holdtime (210 s) — a bandwidth floor visible "
      "in every waste number of this reproduction. A 60 s State Refresh "
      "wave (a few hundred bytes per tree per minute) removes the re-flood "
      "entirely while keeping graft behaviour intact; the mobile-sender "
      "flood cost of Section 4.3.1 then stands out cleanly.");
  return 0;
}
