// FIG4 — mobile sender, approach B (sending on the home link via reverse
// tunnel): Sender S moves to Link 6 and keeps transmitting through the
// tunnel to home agent Router A, which re-originates the datagrams on
// Link 1. The original (S_home, G) tree keeps serving all receivers; no
// new tree, no flood, no asserts.
#include "common.hpp"

using namespace mip6;
using namespace mip6::bench;

int main() {
  header("FIG4: mobile sender via reverse tunnel to its home agent",
         "Sender S (bidir tunnel) moves Link1 -> Link6 at t=30 s");

  Fig1Harness h({McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu});
  h.subscribe_all();
  h.metrics->update_reference_tree(
      h.f.link1->id(),
      {h.f.link1->id(), h.f.link2->id(), h.f.link4->id()});
  h.source->start(Time::sec(1));
  const Time move_at = Time::sec(30);
  std::uint64_t asserts_before_move = 0;
  h.world().scheduler().schedule_at(move_at, [&] {
    asserts_before_move = h.counters().get("pimdm/tx/assert");
    h.f.sender->mn->move_to(*h.f.link6);
  });
  h.world().run_until(Time::sec(120));

  const Address home = h.f.sender->mn->home_address();
  const Address coa = h.f.sender->mn->care_of();
  bool coa_tree = false, home_tree = false;
  for (const auto& r : h.world().routers()) {
    if (!coa.is_unspecified() && r->pim->has_entry(coa, h.group)) {
      coa_tree = true;
    }
    if (r->pim->has_entry(home, h.group)) home_tree = true;
  }

  Table t({"quantity", "measured", "paper's expectation"});
  t.add_row({"care-of address formed", coa.is_unspecified() ? "no" : coa.str(),
             "binding established with Router A"});
  t.add_row({"home-rooted (S,G) tree still in use", home_tree ? "yes" : "no",
             "yes — tree unchanged"});
  t.add_row({"new care-of-rooted tree", coa_tree ? "yes" : "no",
             "no — movement invisible to PIM-DM"});
  t.add_row({"asserts after the move",
             std::to_string(h.counters().get("pimdm/tx/assert") -
                            asserts_before_move),
             "0 (no stale-source packets on tree links)"});
  t.add_row({"MN encapsulations",
             std::to_string(h.counters().get("mn/encap")),
             "every datagram sent after the move"});
  t.add_row({"HA decapsulated+re-originated",
             std::to_string(h.counters().get("ha/decap-multicast")),
             "same count"});
  std::uint64_t r2_after =
      h.app2->received_in(move_at + Time::sec(5), Time::sec(120));
  t.add_row({"datagrams to Receiver 2 after handoff",
             std::to_string(r2_after), "stream continues"});
  t.add_row({"routing stretch with tunnel detour",
             fmt_double(h.metrics->stretch(), 2),
             "> 1: Link6->A retraces tree links"});
  std::printf("%s\n", t.str().c_str());

  paper_note(
      "\"with this, a tunnel for multicast datagrams is established\" "
      "(Fig. 4); the distribution tree needs no rebuild when the sender "
      "moves — the cost is tunnel overhead and datagrams crossing some "
      "links and routers twice (Sec. 4.3.2).");
  return 0;
}
