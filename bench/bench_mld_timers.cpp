// TMR44 — Section 4.4: MLD timer optimization for mobile receivers. Sweeps
// the Query Interval T_Query (bounded below by the 10 s Maximum Response
// Delay, per the paper's footnote 5) for a roaming receiver that does NOT
// send unsolicited Reports, measuring join delay, leave delay (wasted
// bandwidth on deserted links) and the Query/Report signalling cost —
// the exact trade-off the paper asks administrators to tune.
#include "common.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

ReplicationResult run(std::uint64_t seed, Time query_interval,
                      bool unsolicited, bool adaptive = false,
                      Time dwell = Time::sec(200)) {
  WorldConfig config;
  config.mld = MldConfig::with_query_interval(query_interval);
  config.mld.adaptive_querier = adaptive;
  config.mld.adaptive_window = Time::sec(400);
  config.mld_host.unsolicited_reports = unsolicited;
  Fig1Harness h({McastStrategy::kLocalMembership, HaRegistration::kGroupListBu},
                seed, config);
  World& world = h.world();
  h.subscribe_all();
  h.metrics->update_reference_tree(
      h.f.link1->id(),
      {h.f.link1->id(), h.f.link2->id(), h.f.link4->id()});
  h.source->start(Time::sec(1));

  std::vector<Link*> links;
  for (int n = 1; n <= 6; ++n) links.push_back(&h.f.link(n));
  RandomMover mover(*h.f.recv3->mn, world.net().rng(), links, dwell);
  std::vector<Time> move_times;
  mover.set_on_move([&](Link& to) {
    move_times.push_back(world.now());
    h.metrics->update_reference_tree(
        h.f.link1->id(),
        {h.f.link1->id(), h.f.link2->id(), to.id()});
  });
  mover.start(Time::sec(30));

  const Time horizon = Time::sec(1800);
  world.run_until(horizon);

  Summary join;
  for (Time t : move_times) {
    if (auto first = h.app3->first_rx_at_or_after(t)) {
      join.add((*first - t).to_seconds());
    }
  }
  auto& c = world.net().counters();
  ReplicationResult r;
  r["join_delay_s"] = join.mean();
  r["join_delay_max_s"] = join.max();
  r["wasted_kib"] = static_cast<double>(h.metrics->wasted_bytes()) / 1024.0;
  r["mld_kib"] = static_cast<double>(c.get("mld/tx-bytes")) / 1024.0;
  r["queries"] = static_cast<double>(c.get("mld/tx/query"));
  double sent = static_cast<double>(h.source->sent());
  r["loss_pct"] =
      100.0 * (sent - static_cast<double>(h.app3->unique_received())) / sent;
  return r;
}

void sweep(bool unsolicited, std::size_t reps) {
  std::printf("--- %s ---\n",
              unsolicited ? "with unsolicited Reports (paper's added fix)"
                          : "receiver waits for Queries (timer tuning only)");
  Table t({"T_Query", "T_MLI", "join delay (mean/max)", "loss",
           "leave-delay waste", "MLD signalling", "queries sent"});
  for (int tq : {125, 60, 30, 10}) {
    MldConfig mc = MldConfig::with_query_interval(Time::sec(tq));
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 4242;
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run(seed, Time::sec(tq), unsolicited);
    });
    t.add_row(
        {std::to_string(tq) + " s",
         fmt_double(mc.multicast_listener_interval().to_seconds(), 0) + " s",
         fmt_double(m.at("join_delay_s").mean(), 1) + " / " +
             fmt_double(m.at("join_delay_max_s").mean(), 1) + " s",
         fmt_double(m.at("loss_pct").mean(), 1) + " %",
         fmt_double(m.at("wasted_kib").mean(), 0) + " KiB",
         fmt_double(m.at("mld_kib").mean(), 1) + " KiB",
         fmt_double(m.at("queries").mean(), 0)});
  }
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  header("TMR44: MLD Query Interval tuning for mobile receivers",
         "roaming receiver (mean dwell 200 s), 10 dgram/s stream, 1800 s "
         "horizon; T_Query swept 125 -> 10 s");

  sweep(/*unsolicited=*/false, reps);
  sweep(/*unsolicited=*/true, reps);

  // Extension: the adaptive querier (default 125 s, accelerating to 10 s
  // on churn) against the two fixed extremes. Faster roaming (mean dwell
  // 60 s) so per-link churn actually recurs within the adaptation window.
  std::printf("--- adaptive querier (extension; default 125 s, min 10 s; "
              "mean dwell 60 s) ---\n");
  {
    Table t({"querier", "join delay (mean/max)", "loss", "MLD signalling"});
    struct Row { const char* label; Time tq; bool adaptive; };
    for (Row row : {Row{"fixed 125 s", Time::sec(125), false},
                    Row{"adaptive 125->10 s", Time::sec(125), true},
                    Row{"fixed 10 s", Time::sec(10), false}}) {
      ReplicationOptions opts;
      opts.replications = reps;
      opts.base_seed = 4242;
      auto m = run_replications(opts, [&](std::uint64_t seed) {
        return run(seed, row.tq, /*unsolicited=*/false, row.adaptive,
                   Time::sec(60));
      });
      t.add_row({row.label,
                 fmt_double(m.at("join_delay_s").mean(), 1) + " / " +
                     fmt_double(m.at("join_delay_max_s").mean(), 1) + " s",
                 fmt_double(m.at("loss_pct").mean(), 1) + " %",
                 fmt_double(m.at("mld_kib").mean(), 1) + " KiB"});
    }
    std::printf("%s\n", t.str().c_str());
  }

  paper_note(
      "Section 4.4: decreasing T_Query lowers both the join delay (bounded "
      "by T_Query + response delay when waiting for Queries) and the leave "
      "delay / wasted bandwidth (T_MLI = 2*T_Query + 10 s), at the price "
      "of more Query/Report signalling — which stays small next to the "
      "bandwidth saved; T_Query must not drop below T_RespDel = 10 s "
      "(footnote 5). Unsolicited Reports remove the join delay entirely, "
      "leaving timer tuning to fix only the leave delay.");
  return 0;
}
