// MICRO — google-benchmark microbenchmarks of the substrate: event
// scheduler throughput, wire-format serialize/parse rates, checksum,
// routing recomputation and a full Figure-1 simulated second. These bound
// how large the scenario sweeps can go.
#include <benchmark/benchmark.h>

#include "core/figure1.hpp"
#include "core/traffic.hpp"
#include "ipv6/datagram.hpp"
#include "mipv6/messages.hpp"
#include "pimdm/messages.hpp"
#include "sim/scheduler.hpp"
#include "util/checksum.hpp"

namespace mip6 {
namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    for (int i = 0; i < n; ++i) {
      s.schedule_in(Time::us(i % 997), [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TimerRearm(benchmark::State& state) {
  Scheduler s;
  Timer t(s, [] {});
  for (auto _ : state) {
    t.arm(Time::sec(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerRearm);

void BM_DatagramBuild(benchmark::State& state) {
  DatagramSpec spec;
  spec.src = Address::parse("2001:db8:1::1");
  spec.dst = Address::parse("ff1e::1");
  spec.protocol = proto::kUdp;
  spec.payload = Bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_datagram(spec));
  }
  state.SetBytesProcessed(state.iterations() *
                          (40 + state.range(0)));
}
BENCHMARK(BM_DatagramBuild)->Arg(64)->Arg(512)->Arg(1400);

void BM_DatagramParse(benchmark::State& state) {
  DatagramSpec spec;
  spec.src = Address::parse("2001:db8:1::1");
  spec.dst = Address::parse("ff1e::1");
  spec.dest_options.push_back(
      HomeAddressOption{Address::parse("2001:db8:4::99")}.encode());
  spec.protocol = proto::kUdp;
  spec.payload = Bytes(static_cast<std::size_t>(state.range(0)));
  Bytes wire = build_datagram(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_datagram(wire));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DatagramParse)->Arg(64)->Arg(1400);

void BM_InternetChecksum(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1400);

void BM_AddressParseFormat(benchmark::State& state) {
  for (auto _ : state) {
    Address a = Address::parse("2001:db8:1:2:3:4:5:6");
    benchmark::DoNotOptimize(a.str());
  }
}
BENCHMARK(BM_AddressParseFormat);

void BM_PimJoinPruneRoundTrip(benchmark::State& state) {
  PimJoinPrune m = PimJoinPrune::prune(Address::parse("fe80::1"),
                                       Address::parse("2001:db8::1"),
                                       Address::parse("ff1e::1"), 210);
  for (auto _ : state) {
    Bytes body = m.body();
    benchmark::DoNotOptimize(PimJoinPrune::parse(body));
  }
}
BENCHMARK(BM_PimJoinPruneRoundTrip);

void BM_GlobalRoutingRecompute(benchmark::State& state) {
  Figure1 f = build_figure1();
  for (auto _ : state) {
    f.world->routing().recompute();
  }
}
BENCHMARK(BM_GlobalRoutingRecompute);

void BM_Figure1SimulatedSecond(benchmark::State& state) {
  // Full-stack cost: one simulated second of the Figure 1 scenario at
  // 100 datagrams/s with all three receivers subscribed.
  Figure1 f = build_figure1();
  const Address group = Figure1::group();
  for (NodeRuntime* r : {f.recv1, f.recv2, f.recv3}) {
    r->service->subscribe(group);
  }
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, Figure1::kDataPort,
                                          Figure1::kDataPort, std::move(p));
      },
      Time::ms(10), 64);
  source.start(Time::ms(1));
  Time horizon = Time::sec(1);
  for (auto _ : state) {
    f.world->run_until(horizon);
    horizon += Time::sec(1);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_Figure1SimulatedSecond);

}  // namespace
}  // namespace mip6

BENCHMARK_MAIN();
