// Validates BENCH_*.json reports against the mip6-bench-v1 schema
// (docs/PERF.md). Run by the bench-smoke ctest label after each reporting
// bench so the perf tooling cannot silently rot: a bench that stops writing
// its report, or writes a malformed one, fails CI instead of dropping out
// of the trajectory unnoticed.
//
// Usage: validate_bench_json FILE...
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace {

bool fail(const std::string& file, const std::string& why) {
  std::fprintf(stderr, "%s: %s\n", file.c_str(), why.c_str());
  return false;
}

bool require_number(const mip6::Json& metrics, const std::string& file,
                    const char* key) {
  if (!metrics.contains(key)) {
    return fail(file, std::string("metrics missing \"") + key + "\"");
  }
  if (!metrics[key].is_number()) {
    return fail(file, std::string("metrics[\"") + key + "\"] not a number");
  }
  return true;
}

bool validate(const std::string& file) {
  std::ifstream in(file);
  if (!in) return fail(file, "cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();

  mip6::Json doc;
  try {
    doc = mip6::Json::parse(buf.str());
  } catch (const std::exception& e) {
    return fail(file, std::string("parse error: ") + e.what());
  }

  if (!doc.is_object()) return fail(file, "top level is not an object");
  if (!doc.contains("schema") || !doc["schema"].is_string() ||
      doc["schema"].as_string() != "mip6-bench-v1") {
    return fail(file, "schema != \"mip6-bench-v1\"");
  }
  if (!doc.contains("name") || !doc["name"].is_string() ||
      doc["name"].as_string().empty()) {
    return fail(file, "missing non-empty \"name\"");
  }
  if (!doc.contains("metrics") || !doc["metrics"].is_object()) {
    return fail(file, "missing \"metrics\" object");
  }
  const mip6::Json& metrics = doc["metrics"];
  for (const char* key :
       {"wall_s", "events", "ns_per_event", "events_per_s",
        "peak_rss_bytes"}) {
    if (!require_number(metrics, file, key)) return false;
  }
  if (metrics["ns_per_event"].as_number() < 0.0) {
    return fail(file, "ns_per_event negative");
  }
  if (!doc.contains("rows") || !doc["rows"].is_array()) {
    return fail(file, "missing \"rows\" array");
  }
  for (const mip6::Json& row : doc["rows"].items()) {
    if (!row.is_object()) return fail(file, "row is not an object");
    // Parallel-execution fields (optional, introduced with in-world
    // sharding): `threads` is the shard count granted to the cell and
    // `speedup` its events/s ratio vs the serial cell of the same shape.
    // A row carrying speedup must identify its thread count, and both
    // must be sane numbers — a speedup on a 1-thread row means the bench
    // mislabelled its serial baseline.
    if (row.contains("threads")) {
      if (!row["threads"].is_number() || row["threads"].as_number() < 1.0) {
        return fail(file, "row \"threads\" not a number >= 1");
      }
    }
    if (row.contains("speedup")) {
      if (!row["speedup"].is_number() || row["speedup"].as_number() < 0.0) {
        return fail(file, "row \"speedup\" not a non-negative number");
      }
      if (!row.contains("threads") || row["threads"].as_number() <= 1.0) {
        return fail(file, "row has \"speedup\" but no parallel \"threads\"");
      }
    }
  }
  std::printf("%s: ok (%s, %zu rows, %.0f ns/event)\n", file.c_str(),
              doc["name"].as_string().c_str(), doc["rows"].size(),
              metrics["ns_per_event"].as_number());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_*.json...\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = validate(argv[i]) && ok;
  return ok ? 0 : 1;
}
