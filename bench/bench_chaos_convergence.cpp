// ABL6 — chaos convergence. The paper analyses the PIM-DM / MLD / MIPv6
// interoperation on a healthy topology; this bench measures how fast the
// same machinery repairs multicast delivery after injected faults. Part 1
// anatomises single faults (link cut, forwarder crash, receiver crash,
// home-agent outage) with a fixed 5 s outage; part 2 sweeps seeded random
// fault schedules of growing intensity. Every run is driven by a FaultPlan
// through the ChaosEngine, audited after each event, and recovery is
// fault-to-first-redelivered-datagram at the Receiver3 application.
//
// Part 3 is the engine A/B: the same seeded FaultPlans through PIM-DM
// (soft state) and HPIM-DM (hard state + reliable control sync), comparing
// recovery time, control-message overhead, and the Auditor's time-
// integrated blackhole/duplication windows. Writes
// BENCH_chaos_convergence.json (schema mip6-bench-v1).
#include "common.hpp"
#include "fault/auditor.hpp"
#include "fault/chaos.hpp"
#include "report.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

constexpr double kHorizonS = 90.0;

struct Scenario {
  const char* name;
  FaultPlan (*plan)();
  McastStrategy strategy;
  HaRegistration registration;
  bool roam;  // Receiver3 moves to Link6 at t=5 s
};

ReplicationResult run_scenario(const Scenario& sc, std::uint64_t seed) {
  WorldConfig config;
  // Short refresh so home-agent recovery is visible inside the horizon.
  config.mipv6.bu_refresh_interval = Time::sec(5);
  StrategyOptions strategy;
  strategy.strategy = sc.strategy;
  strategy.registration = sc.registration;
  Figure1 f = build_figure1(seed, config, strategy);
  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv3->stack, kPort);
  f.recv3->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));
  if (sc.roam) {
    f.world->scheduler().schedule_at(Time::sec(5), [&f] {
      f.recv3->mn->move_to(*f.link6);
    });
  }
  ChaosEngine chaos(*f.world, sc.plan());
  chaos.arm();
  f.world->run_until(Time::sec(static_cast<std::int64_t>(kHorizonS)));

  ReplicationResult r;
  double total = 0;
  int disruptions = 0, recovered = 0;
  for (const auto& rec : chaos.recoveries(app)) {
    ++disruptions;
    if (auto rt = rec.recovery_time()) {
      ++recovered;
      total += rt->to_seconds();
    }
  }
  r["recovery_s"] = recovered > 0 ? total / recovered : kHorizonS;
  r["recovered_pct"] =
      disruptions > 0 ? 100.0 * recovered / disruptions : 100.0;
  r["audits_ok"] = chaos.all_audits_ok() ? 1.0 : 0.0;
  r["delivered_pct"] = 100.0 * static_cast<double>(app.unique_received()) /
                       static_cast<double>(source.sent());
  return r;
}

ReplicationResult run_random(int disruptions, std::uint64_t seed) {
  Figure1 f = build_figure1(seed);
  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv3->stack, kPort);
  f.recv3->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));

  RandomPlanSpec spec;
  spec.start = Time::sec(10);
  spec.end = Time::sec(100);
  spec.disruptions = disruptions;
  spec.min_outage = Time::sec(2);
  spec.max_outage = Time::sec(8);
  spec.links = {"Link2", "Link3", "Link4"};
  spec.routers = {"RouterB", "RouterC", "RouterD"};
  spec.hosts = {"Receiver3"};
  // The plan is derived from the replication seed, so the whole run —
  // schedule, world and recoveries — is reproducible from one number.
  ChaosEngine chaos(*f.world, FaultPlan::random(spec, seed));
  chaos.arm();
  f.world->run_until(Time::sec(150));
  chaos.record_recoveries(app);

  ReplicationResult r;
  auto& c = f.world->net().counters();
  double rec = static_cast<double>(c.get("chaos/recovered"));
  double unrec = static_cast<double>(c.get("chaos/unrecovered"));
  r["recovery_s"] =
      rec > 0
          ? static_cast<double>(c.get("chaos/recovery-total-ns")) / rec / 1e9
          : 0.0;
  r["recovered_pct"] = 100.0 * rec / (rec + unrec);
  r["audits_ok"] = chaos.all_audits_ok() ? 1.0 : 0.0;
  r["delivered_pct"] = 100.0 * static_cast<double>(app.unique_received()) /
                       static_cast<double>(source.sent());
  return r;
}

/// Sum of every counter under `prefix` (e.g. "hpimdm/tx/").
double prefix_sum(CounterRegistry& c, const std::string& prefix) {
  double total = 0;
  for (const auto& [k, v] : c.snapshot()) {
    if (k.rfind(prefix, 0) == 0) total += static_cast<double>(v);
  }
  return total;
}

const char* engine_name(DenseEngineKind e) {
  return e == DenseEngineKind::kPimDm ? "pimdm" : "hpimdm";
}

/// One A/B replication: the given plan on Figure 1 under one engine, with
/// the Auditor integrating blackhole/duplication windows every 50 ms.
ReplicationResult run_ab(DenseEngineKind engine, const FaultPlan& plan,
                         std::uint64_t seed) {
  WorldConfig config;
  config.dense_engine = engine;
  Figure1 f = build_figure1(seed, config);
  Address group = Figure1::group();
  GroupReceiverApp app(*f.recv3->stack, kPort);
  f.recv3->service->subscribe(group);
  CbrSource source(
      f.world->scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(group, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  source.start(Time::sec(1));

  Auditor auditor(*f.world);
  auditor.arm_window_sampler(Time::ms(50));
  ChaosEngine chaos(*f.world, plan);
  chaos.arm();
  f.world->run_until(Time::sec(60));
  auditor.sample_windows();  // charge the final partial interval

  ReplicationResult r;
  double total = 0;
  int disruptions = 0, recovered = 0;
  for (const auto& rec : chaos.recoveries(app)) {
    ++disruptions;
    if (auto rt = rec.recovery_time()) {
      ++recovered;
      total += rt->to_seconds();
    }
  }
  r["recovery_s"] = recovered > 0 ? total / recovered : 60.0;
  r["recovered_pct"] =
      disruptions > 0 ? 100.0 * recovered / disruptions : 100.0;
  double blackhole = 0, duplication = 0;
  for (const auto& [key, w] : auditor.windows()) {
    blackhole += w.blackhole_s;
    duplication += w.duplication_s;
  }
  r["blackhole_s"] = blackhole;
  r["duplication_s"] = duplication;
  r["control_msgs"] =
      prefix_sum(f.world->net().counters(),
                 std::string(engine_name(engine)) + "/tx/");
  r["audits_ok"] = chaos.all_audits_ok() ? 1.0 : 0.0;
  r["delivered_pct"] = 100.0 * static_cast<double>(app.unique_received()) /
                       static_cast<double>(source.sent());
  r["events"] = static_cast<double>(f.world->scheduler().executed_events());
  return r;
}

FaultPlan link_cut() {
  return FaultPlan()
      .link_down(Time::sec(30), "Link3")
      .link_up(Time::sec(35), "Link3");
}
FaultPlan degrade_l4() {
  return FaultPlan()
      .degrade(Time::sec(30), "Link4", LinkImpairment{0.3, 0.1, Time::ms(2)})
      .restore(Time::sec(35), "Link4");
}
FaultPlan crash_d() {
  return FaultPlan()
      .router_crash(Time::sec(30), "RouterD")
      .router_restart(Time::sec(35), "RouterD");
}
FaultPlan crash_b() {
  return FaultPlan()
      .router_crash(Time::sec(30), "RouterB")
      .router_restart(Time::sec(35), "RouterB");
}
FaultPlan crash_recv3() {
  return FaultPlan()
      .host_crash(Time::sec(30), "Receiver3")
      .host_restart(Time::sec(35), "Receiver3");
}
FaultPlan ha_out() {
  return FaultPlan()
      .ha_outage(Time::sec(30), "RouterD")
      .ha_restore(Time::sec(35), "RouterD");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  if (smoke_mode()) reps = 1;
  header("ABL6: multicast re-convergence under injected faults",
         "Figure 1 topology, 10 dgram/s stream to Receiver3; every fault "
         "lasts 5 s (t=30..35 s), recovery = fault to first re-delivered "
         "datagram");

  const Scenario scenarios[] = {
      {"link cut (Link3)", link_cut, McastStrategy::kLocalMembership,
       HaRegistration::kTunnelMld, false},
      {"degrade 30%/10% (Link4)", degrade_l4, McastStrategy::kLocalMembership,
       HaRegistration::kTunnelMld, false},
      {"forwarder crash (RouterD)", crash_d, McastStrategy::kLocalMembership,
       HaRegistration::kTunnelMld, false},
      {"redundant crash (RouterB)", crash_b, McastStrategy::kLocalMembership,
       HaRegistration::kTunnelMld, false},
      {"receiver crash (Receiver3)", crash_recv3,
       McastStrategy::kLocalMembership, HaRegistration::kTunnelMld, false},
      {"HA outage, tunneled MN", ha_out, McastStrategy::kTunnelHaToMh,
       HaRegistration::kGroupListBu, true},
  };

  Table t1({"fault", "recovery mean", "recovery max", "recovered",
            "delivered", "audits"});
  for (const Scenario& sc : scenarios) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 61;
    auto m = run_replications(
        opts, [&](std::uint64_t seed) { return run_scenario(sc, seed); });
    t1.add_row({sc.name, fmt_double(m.at("recovery_s").mean(), 2) + " s",
                fmt_double(m.at("recovery_s").max(), 2) + " s",
                fmt_double(m.at("recovered_pct").mean(), 0) + " %",
                fmt_double(m.at("delivered_pct").mean(), 1) + " %",
                m.at("audits_ok").min() > 0 ? "ok" : "VIOLATED"});
  }
  std::printf("%s\n", t1.str().c_str());

  Table t2({"disruptions", "recovery mean", "recovered", "delivered",
            "audits"});
  for (int n : {2, 4, 8}) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 71;
    auto m = run_replications(
        opts, [&](std::uint64_t seed) { return run_random(n, seed); });
    t2.add_row({std::to_string(n),
                fmt_double(m.at("recovery_s").mean(), 2) + " s",
                fmt_double(m.at("recovered_pct").mean(), 0) + " %",
                fmt_double(m.at("delivered_pct").mean(), 1) + " %",
                m.at("audits_ok").min() > 0 ? "ok" : "VIOLATED"});
  }
  std::printf("%s\n", t2.str().c_str());

  // Part 3: the engine A/B. Identical seeded FaultPlans through both
  // dense-mode engines; blackhole/duplication are Auditor-integrated
  // windows (seconds of user-visible failure), control is the engine's
  // total tx message count over the 60 s run.
  struct AbCase {
    const char* name;
    const char* key;  // row key in the JSON report
    FaultPlan (*plan)();
  };
  const AbCase ab_cases[] = {
      {"forwarder crash (RouterD)", "crash_d", crash_d},
      {"link cut (Link3)", "link_cut", link_cut},
      {"redundant crash (RouterB)", "crash_b", crash_b},
  };
  BenchReport report("chaos_convergence");
  Table t3({"fault", "engine", "recovery mean", "blackhole", "duplication",
            "control msgs", "delivered", "audits"});
  WallTimer ab_timer;
  double ab_events = 0;
  for (const AbCase& ab : ab_cases) {
    for (DenseEngineKind engine :
         {DenseEngineKind::kPimDm, DenseEngineKind::kHpimDm}) {
      ReplicationOptions opts;
      opts.replications = reps;
      opts.base_seed = 81;
      auto m = run_replications(opts, [&](std::uint64_t seed) {
        return run_ab(engine, ab.plan(), seed);
      });
      ab_events += m.at("events").mean() * static_cast<double>(reps);
      t3.add_row({ab.name, engine_name(engine),
                  fmt_double(m.at("recovery_s").mean(), 2) + " s",
                  fmt_double(m.at("blackhole_s").mean(), 2) + " s",
                  fmt_double(m.at("duplication_s").mean(), 2) + " s",
                  fmt_double(m.at("control_msgs").mean(), 0),
                  fmt_double(m.at("delivered_pct").mean(), 1) + " %",
                  m.at("audits_ok").min() > 0 ? "ok" : "VIOLATED"});
      Json row = Json::object();
      row.set("fault", std::string(ab.key));
      row.set("engine", std::string(engine_name(engine)));
      row.set("recovery_s", m.at("recovery_s").mean());
      row.set("blackhole_s", m.at("blackhole_s").mean());
      row.set("duplication_s", m.at("duplication_s").mean());
      row.set("control_msgs", m.at("control_msgs").mean());
      row.set("delivered_pct", m.at("delivered_pct").mean());
      row.set("audits_ok", m.at("audits_ok").min() > 0);
      report.add_row(std::move(row));
      if (std::string(ab.key) == "crash_d") {
        std::string suffix = std::string("_") + engine_name(engine);
        report.metric("crash_recovery_s" + suffix,
                      m.at("recovery_s").mean());
        report.metric("crash_blackhole_s" + suffix,
                      m.at("blackhole_s").mean());
        report.metric("crash_control_msgs" + suffix,
                      m.at("control_msgs").mean());
      }
    }
  }
  std::printf("%s\n", t3.str().c_str());
  paper_note(
      "engine A/B under identical chaos: HPIM-DM's hard state survives the "
      "forwarder crash, so the post-restart blackhole window collapses from "
      "the MLD-relearn bound to the first forwarded datagram; its reliable "
      "acknowledged control replaces periodic re-flooding.");
  report.record_run(ab_timer.elapsed_s(), ab_events);
  report.metric("reps", static_cast<double>(reps));
  report.write();

  paper_note(
      "beyond the paper: its interoperation analysis assumes a healthy "
      "topology. Under injected faults the same machinery self-repairs — "
      "dense-mode flood plus MLD startup queries bound repair after a "
      "forwarder crash at roughly the query response interval, a cut "
      "branch heals as soon as the link returns, and the tunnel approaches "
      "(3/4) add a dependency the membership approach (2) does not have: "
      "after a home-agent outage, delivery returns only with the next "
      "Binding Update refresh carrying the group list.");
  return 0;
}
