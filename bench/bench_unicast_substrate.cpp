// ABL5 — "Protocol Independent": the same PIM-DM/MLD/MIPv6 stack over two
// unicast substrates — the instantly-converged global-routing oracle and a
// real RIPng distance-vector protocol with periodic updates and
// convergence transients. The paper's conclusions must not depend on the
// substrate; the residual differences (startup convergence, routing
// control bytes) are quantified here.
#include "common.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

ReplicationResult run(std::uint64_t seed, UnicastRouting unicast) {
  WorldConfig config;
  config.unicast = unicast;
  Fig1Harness h({McastStrategy::kLocalMembership, HaRegistration::kGroupListBu},
                seed, config);
  World& world = h.world();
  h.subscribe_all();
  h.metrics->update_reference_tree(
      h.f.link1->id(),
      {h.f.link1->id(), h.f.link2->id(), h.f.link4->id()});
  // Start traffic immediately: with RIPng this exercises the convergence
  // window (RPF failures until routes exist).
  h.source->start(Time::ms(500));

  std::vector<Link*> links;
  for (int n = 1; n <= 6; ++n) links.push_back(&h.f.link(n));
  RandomMover mover(*h.f.recv3->mn, world.net().rng(), links,
                    Time::sec(120));
  std::vector<Time> move_times;
  mover.set_on_move([&](Link& to) {
    move_times.push_back(world.now());
    h.metrics->update_reference_tree(
        h.f.link1->id(),
        {h.f.link1->id(), h.f.link2->id(), to.id()});
  });
  mover.start(Time::sec(30));
  const Time horizon = Time::sec(900);
  world.run_until(horizon);

  Summary join;
  for (Time t : move_times) {
    if (auto first = h.app3->first_rx_at_or_after(t)) {
      join.add((*first - t).to_seconds());
    }
  }
  auto& c = world.net().counters();
  double sent = static_cast<double>(h.source->sent());
  ReplicationResult r;
  r["join_delay_s"] = join.mean();
  r["loss_pct"] =
      100.0 * (sent - static_cast<double>(h.app3->unique_received())) / sent;
  r["first_delivery_s"] = [&] {
    auto first = h.app3->first_rx_at_or_after(Time::zero());
    return first ? first->to_seconds() : 900.0;
  }();
  r["rpf_failures"] = static_cast<double>(c.get("pimdm/rpf-fail"));
  r["routing_ctrl_kib"] =
      static_cast<double>(c.get("ripng/tx-bytes")) / 1024.0;
  r["stretch"] = h.metrics->stretch();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  header("ABL5: unicast substrate — oracle vs RIPng distance vector",
         "Fig. 1, roaming receiver (dwell 120 s), traffic from t=0.5 s, "
         "900 s horizon");

  Table t({"substrate", "first delivery", "join delay", "loss",
           "RPF failures", "routing ctrl", "stretch"});
  struct Case {
    const char* label;
    UnicastRouting unicast;
  };
  for (Case c : {Case{"global oracle (instant routes)",
                      UnicastRouting::kGlobalOracle},
                 Case{"RIPng (30 s updates)", UnicastRouting::kRipng}}) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 64;
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run(seed, c.unicast);
    });
    t.add_row({c.label,
               fmt_double(m.at("first_delivery_s").mean(), 2) + " s",
               fmt_double(m.at("join_delay_s").mean(), 3) + " s",
               fmt_double(m.at("loss_pct").mean(), 2) + " %",
               fmt_double(m.at("rpf_failures").mean(), 0),
               fmt_double(m.at("routing_ctrl_kib").mean(), 1) + " KiB",
               fmt_double(m.at("stretch").mean(), 2)});
  }
  std::printf("%s\n", t.str().c_str());

  paper_note(
      "PIM-DM consumes whatever unicast RIB exists — after RIPng's initial "
      "convergence (one flooded update round; visible as RPF failures and "
      "a delayed first delivery) the multicast behaviour is identical to "
      "the oracle substrate, at the cost of periodic routing updates. The "
      "paper's qualitative conclusions are substrate-independent.");
  return 0;
}
