// Shared scaffolding for the reproduction benches: a Figure-1 harness with
// CBR traffic and receiver apps, plus output conventions. Every bench
// prints the rows/series corresponding to one table or figure of the paper
// together with a "# paper:" line stating the claim being checked; see
// EXPERIMENTS.md for the side-by-side record.
#pragma once

#include <cstdio>
#include <memory>

#include "core/figure1.hpp"
#include "core/metrics.hpp"
#include "core/mobility.hpp"
#include "core/traffic.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/strings.hpp"

namespace mip6::bench {

constexpr std::uint16_t kPort = Figure1::kDataPort;

struct Fig1Harness {
  Figure1 f;
  Address group = Figure1::group();
  std::unique_ptr<McastMetrics> metrics;
  std::unique_ptr<CbrSource> source;
  std::unique_ptr<GroupReceiverApp> app1, app2, app3;

  explicit Fig1Harness(StrategyOptions strategy = {}, std::uint64_t seed = 1,
                       WorldConfig config = {},
                       Time cbr_interval = Time::ms(100),
                       std::size_t payload = 64) {
    f = build_figure1(seed, config, strategy);
    metrics = std::make_unique<McastMetrics>(f.world->net(),
                                             f.world->routing(), group, kPort);
    app1 = std::make_unique<GroupReceiverApp>(*f.recv1->stack, kPort);
    app2 = std::make_unique<GroupReceiverApp>(*f.recv2->stack, kPort);
    app3 = std::make_unique<GroupReceiverApp>(*f.recv3->stack, kPort);
    source = std::make_unique<CbrSource>(
        f.world->scheduler(),
        [this](Bytes p) {
          f.sender->service->send_multicast(group, kPort, kPort,
                                            std::move(p));
        },
        cbr_interval, payload);
  }

  void subscribe_all() {
    f.recv1->service->subscribe(group);
    f.recv2->service->subscribe(group);
    f.recv3->service->subscribe(group);
  }

  World& world() { return *f.world; }
  CounterRegistry& counters() { return f.world->net().counters(); }
};

inline void header(const char* experiment, const char* what) {
  std::printf("==============================================================="
              "=\n%s\n%s\n"
              "================================================================"
              "\n",
              experiment, what);
}

inline void paper_note(const char* claim) {
  std::printf("# paper: %s\n", claim);
}

inline std::string secs(Time t, int decimals = 3) {
  return fmt_double(t.to_seconds(), decimals) + " s";
}

}  // namespace mip6::bench
