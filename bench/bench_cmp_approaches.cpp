// CMP43 — the paper's Section 4.3 comparison, quantified. The mobile host
// (Receiver 3's node) both receives group G1 (streamed by Sender S) and
// sends group G2 (heard by Receiver 2) while roaming the Figure 1 network
// with Poisson moves; each approach runs the identical replicated
// workload. Columns = the paper's criteria: join delay, datagram loss in
// both directions, bandwidth consumption (wasted bytes + routing
// stretch), tunnel bytes, protocol overhead, system load on home agents /
// the mobile host, and the mobile-sender pathologies (asserts,
// care-of-rooted trees). Replications run in parallel on the thread-pool
// runner.
#include "common.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

ReplicationResult run_replication(std::uint64_t seed, StrategyOptions opts) {
  Figure1 f = build_figure1(seed, {}, opts);
  World& world = *f.world;
  const Address g1 = Address::parse("ff1e::1");
  const Address g2 = Address::parse("ff1e::2");

  GroupReceiverApp mh_app(*f.recv3->stack, kPort);
  GroupReceiverApp r2_app(*f.recv2->stack, kPort);
  f.recv3->service->subscribe(g1);
  f.recv1->service->subscribe(g1);
  f.recv2->service->subscribe(g2);

  McastMetrics metrics_g1(world.net(), world.routing(), g1, kPort);
  McastMetrics metrics_g2(world.net(), world.routing(), g2, kPort);
  metrics_g1.update_reference_tree(
      f.link1->id(), {f.link1->id(), f.link4->id()});
  metrics_g2.update_reference_tree(f.link4->id(), {f.link2->id()});

  CbrSource s_source(
      world.scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(g1, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  CbrSource mh_source(
      world.scheduler(),
      [&](Bytes p) {
        f.recv3->service->send_multicast(g2, kPort, kPort, std::move(p));
      },
      Time::ms(100), 64);
  s_source.start(Time::sec(1));
  mh_source.start(Time::sec(1));

  std::vector<Link*> links;
  for (int n = 1; n <= 6; ++n) links.push_back(&f.link(n));
  RandomMover mover(*f.recv3->mn, world.net().rng(), links, Time::sec(60));
  std::vector<Time> move_times;
  mover.set_on_move([&](Link& to) {
    move_times.push_back(world.now());
    metrics_g1.update_reference_tree(f.link1->id(),
                                     {f.link1->id(), to.id()});
    metrics_g2.update_reference_tree(to.id(), {f.link2->id()});
  });
  mover.start(Time::sec(20));

  const Time horizon = Time::sec(900);
  world.run_until(horizon);

  Summary join;
  for (Time t : move_times) {
    if (auto first = mh_app.first_rx_at_or_after(t)) {
      join.add((*first - t).to_seconds());
    }
  }
  auto& c = world.net().counters();
  ReplicationResult r;
  r["moves"] = static_cast<double>(mover.moves());
  r["join_delay_s"] = join.mean();
  double sent1 = static_cast<double>(s_source.sent());
  double sent2 = static_cast<double>(mh_source.sent());
  r["recv_loss_pct"] =
      100.0 * (sent1 - static_cast<double>(mh_app.unique_received())) / sent1;
  r["send_loss_pct"] =
      100.0 * (sent2 - static_cast<double>(r2_app.unique_received())) / sent2;
  r["wasted_kib"] = static_cast<double>(metrics_g1.wasted_bytes() +
                                        metrics_g2.wasted_bytes()) /
                    1024.0;
  r["stretch"] = (metrics_g1.stretch() + metrics_g2.stretch()) / 2.0;
  r["tunneled_kib"] = static_cast<double>(metrics_g1.tunneled_bytes() +
                                          metrics_g2.tunneled_bytes()) /
                      1024.0;
  r["ctrl_kib"] =
      static_cast<double>(c.get("pimdm/tx-bytes") + c.get("mld/tx-bytes") +
                          c.get("mn/bu-bytes")) /
      1024.0;
  r["ha_load_ops"] = static_cast<double>(c.get("ha/encap-multicast") +
                                         c.get("ha/encap-unicast") +
                                         c.get("ha/decap"));
  r["mn_load_ops"] =
      static_cast<double>(c.get("mn/encap") + c.get("mn/decap"));
  r["asserts"] = static_cast<double>(c.get("pimdm/tx/assert"));
  r["sg_created"] = static_cast<double>(c.get("pimdm/sg-created"));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  header("CMP43: Section 4.3 comparison of the four approaches",
         "mobile host sends G2 + receives G1 while roaming (Poisson, mean "
         "dwell 60 s), 900 s horizon, replicated");

  struct Case {
    const char* label;
    StrategyOptions opts;
  };
  const Case cases[] = {
      {"1 local membership",
       {McastStrategy::kLocalMembership, HaRegistration::kGroupListBu}},
      {"2 bidir tunnel",
       {McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu}},
      {"3 tunnel MH->HA",
       {McastStrategy::kTunnelMhToHa, HaRegistration::kGroupListBu}},
      {"4 tunnel HA->MH",
       {McastStrategy::kTunnelHaToMh, HaRegistration::kGroupListBu}},
  };

  Table t({"approach", "join delay", "recv loss", "send loss", "wasted bw",
           "stretch", "tunnel bytes", "ctrl bytes", "HA load", "MH load",
           "asserts", "(S,G) created"});
  for (const Case& c : cases) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 31337;
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run_replication(seed, c.opts);
    });
    t.add_row({c.label,
               fmt_double(m.at("join_delay_s").mean(), 3) + " s",
               fmt_double(m.at("recv_loss_pct").mean(), 2) + " %",
               fmt_double(m.at("send_loss_pct").mean(), 2) + " %",
               fmt_double(m.at("wasted_kib").mean(), 0) + " KiB",
               fmt_double(m.at("stretch").mean(), 2),
               fmt_double(m.at("tunneled_kib").mean(), 0) + " KiB",
               fmt_double(m.at("ctrl_kib").mean(), 1) + " KiB",
               fmt_double(m.at("ha_load_ops").mean(), 0) + " ops",
               fmt_double(m.at("mn_load_ops").mean(), 0) + " ops",
               fmt_double(m.at("asserts").mean(), 1),
               fmt_double(m.at("sg_created").mean(), 1)});
  }
  std::printf("%s\n", t.str().c_str());

  paper_note(
      "Section 4.3's qualitative ranking, quantified (with unsolicited "
      "Reports active, so the MLD join delay is already mitigated): local "
      "membership is routing-optimal with zero HA/MH load but floods a new "
      "tree and triggers asserts on every sender move and wastes "
      "leave-delay bandwidth on every receiver move; the bidirectional "
      "tunnel keeps one tree and no asserts at the cost of per-packet "
      "HA/MH processing, tunnel bytes and suboptimal routing; MH->HA "
      "mixes optimal receive routing with tunnel-side sending; HA->MH "
      "pays both the tunnel's receive costs and the local sender's "
      "flood/assert costs — the paper's \"combines most disadvantages\".");
  return 0;
}
