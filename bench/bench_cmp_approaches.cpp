// CMP43 — the paper's Section 4.3 comparison, quantified, extended to the
// six delivery approaches. The mobile host (Receiver 3's node) both
// receives group G1 (streamed by Sender S) and sends group G2 (heard by
// Receiver 2) while roaming the Figure 1 network with Poisson moves; each
// approach runs the identical replicated workload. Columns = the paper's
// criteria plus the ISSUE-10 handoff trio: handoff latency (gap until the
// first post-move datagram), handoff loss (datagrams missed per move),
// tree-state cost ((S,G) entries + MLD listeners created), datagram loss
// in both directions, bandwidth consumption (wasted bytes + routing
// stretch), tunnel bytes, protocol overhead, and system load on home
// agents / the mobile host. Rows 5-6 are the post-paper approaches: the
// hierarchical domain proxy (Schmidt/Waehlisch) and Helmy's
// multicast-based mobility. Replications run in parallel on the
// thread-pool runner; the results land in BENCH_cmp_approaches.json.
#include <cmath>

#include "common.hpp"
#include "report.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

ReplicationResult run_replication(std::uint64_t seed, StrategyOptions opts,
                                  Time horizon) {
  Figure1 f = build_figure1(seed, {}, opts);
  World& world = *f.world;
  const Address g1 = Address::parse("ff1e::1");
  const Address g2 = Address::parse("ff1e::2");

  GroupReceiverApp mh_app(*f.recv3->stack, kPort);
  GroupReceiverApp r2_app(*f.recv2->stack, kPort);
  f.recv3->service->subscribe(g1);
  f.recv1->service->subscribe(g1);
  f.recv2->service->subscribe(g2);

  McastMetrics metrics_g1(world.net(), world.routing(), g1, kPort);
  McastMetrics metrics_g2(world.net(), world.routing(), g2, kPort);
  metrics_g1.update_reference_tree(
      f.link1->id(), {f.link1->id(), f.link4->id()});
  metrics_g2.update_reference_tree(f.link4->id(), {f.link2->id()});

  const Time cbr_interval = Time::ms(100);
  CbrSource s_source(
      world.scheduler(),
      [&](Bytes p) {
        f.sender->service->send_multicast(g1, kPort, kPort, std::move(p));
      },
      cbr_interval, 64);
  CbrSource mh_source(
      world.scheduler(),
      [&](Bytes p) {
        f.recv3->service->send_multicast(g2, kPort, kPort, std::move(p));
      },
      cbr_interval, 64);
  s_source.start(Time::sec(1));
  mh_source.start(Time::sec(1));

  std::vector<Link*> links;
  for (int n = 1; n <= 6; ++n) links.push_back(&f.link(n));
  RandomMover mover(*f.recv3->mn, world.net().rng(), links, Time::sec(60));
  std::vector<Time> move_times;
  mover.set_on_move([&](Link& to) {
    move_times.push_back(world.now());
    metrics_g1.update_reference_tree(f.link1->id(),
                                     {f.link1->id(), to.id()});
    metrics_g2.update_reference_tree(to.id(), {f.link2->id()});
  });
  mover.start(Time::sec(20));

  WallTimer timer;
  world.run_until(horizon);
  double wall = timer.elapsed_s();

  // Handoff latency = gap between a move and the first G1 datagram heard
  // on the new link; handoff loss = the CBR datagrams that gap swallowed.
  Summary latency;
  Summary gap_loss;
  for (Time t : move_times) {
    if (auto first = mh_app.first_rx_at_or_after(t)) {
      double gap_s = (*first - t).to_seconds();
      latency.add(gap_s);
      gap_loss.add(std::floor(gap_s / cbr_interval.to_seconds()));
    }
  }
  auto& c = world.net().counters();
  ReplicationResult r;
  r["moves"] = static_cast<double>(mover.moves());
  r["handoff_latency_s"] = latency.mean();
  r["handoff_loss_pkts"] = gap_loss.mean();
  // Tree-state cost: multicast forwarding state churned into the routers —
  // (S,G) entries flooded into existence plus MLD listener records.
  r["tree_state"] = static_cast<double>(c.get("pimdm/sg-created") +
                                        c.get("hpimdm/sg-created") +
                                        c.get("mld/listener-added"));
  double sent1 = static_cast<double>(s_source.sent());
  double sent2 = static_cast<double>(mh_source.sent());
  r["recv_loss_pct"] =
      100.0 * (sent1 - static_cast<double>(mh_app.unique_received())) / sent1;
  r["send_loss_pct"] =
      100.0 * (sent2 - static_cast<double>(r2_app.unique_received())) / sent2;
  r["wasted_kib"] = static_cast<double>(metrics_g1.wasted_bytes() +
                                        metrics_g2.wasted_bytes()) /
                    1024.0;
  r["stretch"] = (metrics_g1.stretch() + metrics_g2.stretch()) / 2.0;
  r["tunneled_kib"] = static_cast<double>(metrics_g1.tunneled_bytes() +
                                          metrics_g2.tunneled_bytes()) /
                      1024.0;
  r["ctrl_kib"] =
      static_cast<double>(c.get("pimdm/tx-bytes") + c.get("mld/tx-bytes") +
                          c.get("mn/bu-bytes")) /
      1024.0;
  r["ha_load_ops"] = static_cast<double>(
      c.get("ha/encap-multicast") + c.get("ha/encap-unicast") +
      c.get("ha/encap-mcast-coa") + c.get("ha/decap"));
  r["mn_load_ops"] =
      static_cast<double>(c.get("mn/encap") + c.get("mn/decap"));
  r["proxy_ops"] = static_cast<double>(c.get("proxy/encap-multicast"));
  r["asserts"] = static_cast<double>(c.get("pimdm/tx/assert"));
  r["wall_s"] = wall;
  r["events"] = static_cast<double>(world.scheduler().executed_events());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = smoke_mode();
  std::size_t reps =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : (smoke ? 2 : 8);
  const Time horizon = smoke ? Time::sec(300) : Time::sec(900);
  header("CMP43: the six delivery approaches compared",
         "mobile host sends G2 + receives G1 while roaming (Poisson, mean "
         "dwell 60 s); paper's four approaches + hier-proxy + "
         "mcast-mobility, replicated");

  struct Case {
    const char* label;
    StrategyOptions opts;
  };
  const Case cases[] = {
      {"1 local membership",
       {McastStrategy::kLocalMembership, HaRegistration::kGroupListBu}},
      {"2 bidir tunnel",
       {McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu}},
      {"3 tunnel MH->HA",
       {McastStrategy::kTunnelMhToHa, HaRegistration::kGroupListBu}},
      {"4 tunnel HA->MH",
       {McastStrategy::kTunnelHaToMh, HaRegistration::kGroupListBu}},
      {"5 hier proxy",
       {McastStrategy::kHierProxy, HaRegistration::kGroupListBu}},
      {"6 mcast mobility",
       {McastStrategy::kMcastMobility, HaRegistration::kGroupListBu}},
  };

  BenchReport report("cmp_approaches");
  double total_wall = 0.0;
  double total_events = 0.0;

  Table t({"approach", "handoff lat", "handoff loss", "tree state",
           "recv loss", "send loss", "wasted bw", "stretch", "tunnel bytes",
           "ctrl bytes", "HA load", "MH load", "asserts"});
  for (const Case& c : cases) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 31337;
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run_replication(seed, c.opts, horizon);
    });
    t.add_row({c.label,
               fmt_double(m.at("handoff_latency_s").mean(), 3) + " s",
               fmt_double(m.at("handoff_loss_pkts").mean(), 1) + " pkt",
               fmt_double(m.at("tree_state").mean(), 0),
               fmt_double(m.at("recv_loss_pct").mean(), 2) + " %",
               fmt_double(m.at("send_loss_pct").mean(), 2) + " %",
               fmt_double(m.at("wasted_kib").mean(), 0) + " KiB",
               fmt_double(m.at("stretch").mean(), 2),
               fmt_double(m.at("tunneled_kib").mean(), 0) + " KiB",
               fmt_double(m.at("ctrl_kib").mean(), 1) + " KiB",
               fmt_double(m.at("ha_load_ops").mean(), 0) + " ops",
               fmt_double(m.at("mn_load_ops").mean(), 0) + " ops",
               fmt_double(m.at("asserts").mean(), 1)});

    Json row = Json::object();
    row.set("approach", strategy_name(c.opts.strategy));
    row.set("handoff_latency_s", m.at("handoff_latency_s").mean());
    row.set("handoff_loss_pkts", m.at("handoff_loss_pkts").mean());
    row.set("tree_state", m.at("tree_state").mean());
    row.set("recv_loss_pct", m.at("recv_loss_pct").mean());
    row.set("send_loss_pct", m.at("send_loss_pct").mean());
    row.set("wasted_kib", m.at("wasted_kib").mean());
    row.set("stretch", m.at("stretch").mean());
    row.set("tunneled_kib", m.at("tunneled_kib").mean());
    row.set("ctrl_kib", m.at("ctrl_kib").mean());
    row.set("ha_load_ops", m.at("ha_load_ops").mean());
    row.set("mn_load_ops", m.at("mn_load_ops").mean());
    row.set("proxy_ops", m.at("proxy_ops").mean());
    row.set("asserts", m.at("asserts").mean());
    row.set("moves", m.at("moves").mean());
    report.add_row(std::move(row));
    total_wall += m.at("wall_s").sum();
    total_events += m.at("events").sum();
  }
  std::printf("%s\n", t.str().c_str());

  report.record_run(total_wall, total_events);
  report.metric("replications", static_cast<double>(reps));
  report.metric("horizon_s", horizon.to_seconds());
  report.write();

  paper_note(
      "Section 4.3's qualitative ranking, quantified (with unsolicited "
      "Reports active, so the MLD join delay is already mitigated): local "
      "membership is routing-optimal with zero HA/MH load but churns tree "
      "state and triggers asserts on every sender move; the bidirectional "
      "tunnel keeps one tree and no asserts at the cost of per-packet "
      "HA/MH processing, tunnel bytes and suboptimal routing; the "
      "unidirectional tunnels mix those costs per direction. The two "
      "post-paper rows: the hierarchical proxy confines handoff signalling "
      "to the domain (tunnel costs move from the HA to the proxy), and "
      "multicast-based mobility trades HA tunnels for native forwarding "
      "into the MN's reachability group at the price of per-move AR "
      "join/prune churn.");
  return 0;
}
