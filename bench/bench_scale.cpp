// SCALE — hot-path throughput sweep over topology size × group count ×
// receiver mobility rate on seeded random topologies. This is the bench the
// perf trajectory is judged against: every cell records wall time and
// executed scheduler events per replication, and the headline ns/event //
// events/s aggregate lands in BENCH_scale.json (schema in docs/PERF.md).
// The sweep axes mirror the scaling studies of the related literature
// (Helmy cs/0006022; Schmidt & Wählisch cs/0408009): credible mobility
// numbers need topology size and handover rate swept together.
#include <map>
#include <tuple>

#include "common.hpp"
#include "core/random_topology.hpp"
#include "report.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

struct Cell {
  std::size_t routers;
  std::size_t groups;
  int dwell_s;  // 0 = static receivers
  /// Fanout cap handed to the topology generator (0 = unbounded). The
  /// large cells need one so no router exceeds the MFC interface budget.
  std::size_t max_fanout = 0;
  /// 0 = use the sweep-wide replication count.
  std::size_t reps_override = 0;
  /// Headline cells feed the aggregate ns/event // events/s trajectory;
  /// the large memory-envelope cells are reported per-row only so the
  /// headline stays comparable across runs.
  bool headline = true;
  /// In-world worker shards (World::enable_parallel): 1 = serial. Parallel
  /// cells are byte-identical to their serial twin by construction (the
  /// identity suite pins that); here only the wall clock is under test,
  /// reported as speedup vs the serial cell with the same shape. Parallel
  /// cells never feed the headline aggregate.
  std::uint32_t threads = 1;
};

ReplicationResult run_cell(std::uint64_t seed, const Cell& cell,
                           Time horizon) {
  RandomTopologyParams params;
  params.routers = cell.routers;
  params.extra_links = cell.routers / 4;
  params.seed = seed;
  params.max_fanout = cell.max_fanout;
  RandomTopology topo = build_random_topology(params);
  World& world = *topo.world;

  struct GroupEnv {
    Address group;
    NodeRuntime* sender = nullptr;
    std::vector<NodeRuntime*> receivers;
    std::unique_ptr<CbrSource> source;
    std::vector<std::unique_ptr<GroupReceiverApp>> apps;
    std::vector<std::unique_ptr<RandomMover>> movers;
  };
  std::vector<GroupEnv> envs(cell.groups);

  const std::size_t n = topo.stub_links.size();
  for (std::size_t g = 0; g < cell.groups; ++g) {
    GroupEnv& env = envs[g];
    env.group = Address::parse("ff1e::" + std::to_string(0x100 + g));
    env.sender = &world.add_host("S" + std::to_string(g),
                                 *topo.stub_links[g % n]);
    // Two receivers per group, spread over the stubs.
    for (std::size_t r = 0; r < 2; ++r) {
      env.receivers.push_back(&world.add_host(
          "R" + std::to_string(g) + "_" + std::to_string(r),
          *topo.stub_links[(g + 1 + r * (n / 2 + 1)) % n]));
    }
  }
  world.finalize();

  for (GroupEnv& env : envs) {
    for (NodeRuntime* r : env.receivers) {
      env.apps.push_back(std::make_unique<GroupReceiverApp>(*r->stack, kPort));
      r->service->subscribe(env.group);
      if (cell.dwell_s > 0) {
        std::vector<Link*> roam(topo.stub_links.begin(),
                                topo.stub_links.end());
        auto mover = std::make_unique<RandomMover>(
            *r->mn, world.net().rng(), roam, Time::sec(cell.dwell_s));
        mover->start(Time::sec(5));
        env.movers.push_back(std::move(mover));
      }
    }
    env.source = std::make_unique<CbrSource>(
        world.scheduler(),
        [&world, &env](Bytes p) {
          env.sender->service->send_multicast(env.group, kPort, kPort,
                                              std::move(p));
        },
        Time::ms(50), 128, env.sender->node->domain());
    env.source->start(Time::sec(1));
  }

  const std::uint32_t shards =
      cell.threads > 1 ? world.enable_parallel(cell.threads) : 1;

  WallTimer timer;
  world.run_until(horizon);
  double wall = timer.elapsed_s();

  auto& c = world.net().counters();
  std::uint64_t delivered = 0;
  for (const GroupEnv& env : envs) {
    for (const auto& app : env.apps) delivered += app->unique_received();
  }
  std::uint64_t sg_entries = 0;
  for (NodeRuntime* rt : topo.routers) {
    if (rt->dense != nullptr) sg_entries += rt->dense->entry_count();
  }
  ReplicationResult r;
  r["wall_s"] = wall;
  r["events"] = static_cast<double>(world.scheduler().executed_events());
  r["data_fwd"] = static_cast<double>(c.get("pimdm/data-fwd"));
  r["unicast_fwd"] = static_cast<double>(c.get("ipv6/fwd"));
  r["delivered"] = static_cast<double>(delivered);
  r["pending_at_end"] =
      static_cast<double>(world.scheduler().pending_events());
  r["sg_entries"] = static_cast<double>(sg_entries);
  r["mfc_hit"] = static_cast<double>(c.get("pimdm/mfc-hit"));
  r["mfc_miss"] = static_cast<double>(c.get("pimdm/mfc-miss"));
  // Shards actually granted (the partitioner may cap below the request).
  r["threads"] = static_cast<double>(shards);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = smoke_mode();
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                              : (smoke ? 2 : 4);
  const Time horizon = smoke ? Time::sec(30) : Time::sec(120);

  header("SCALE: event/packet hot-path throughput sweep",
         smoke ? "smoke mode: 8 routers, 1-2 groups, 30 s horizon"
               : "routers x groups x receiver dwell; 20 dgram/s per group, "
                 "120 s horizon");

  std::vector<Cell> cells;
  if (smoke) {
    cells = {{8, 1, 0}, {8, 2, 30}};
    // Parallel twin of the churny small cell: wall clock only, the
    // identity suite already pins byte-equality.
    cells.push_back({8, 2, 30, /*max_fanout=*/0, /*reps_override=*/0,
                     /*headline=*/false, /*threads=*/2});
    // Memory-envelope cell, smoke-sized in replication count only: the
    // router count must stay ≥1k for the rss-per-(S,G) figure to mean
    // anything. Static receivers, fanout-capped topology.
    cells.push_back({1024, 8, 0, /*max_fanout=*/32, /*reps_override=*/1,
                     /*headline=*/false});
    // 1k-router multi-group churn cell (smoke-sized group count), serial
    // then parallel.
    cells.push_back({1024, 8, 30, /*max_fanout=*/32, /*reps_override=*/1,
                     /*headline=*/false});
    cells.push_back({1024, 8, 30, /*max_fanout=*/32, /*reps_override=*/1,
                     /*headline=*/false, /*threads=*/8});
  } else {
    for (std::size_t routers : {8, 16, 32}) {
      for (std::size_t groups : {std::size_t{1}, std::size_t{4}}) {
        for (int dwell : {0, 30}) cells.push_back({routers, groups, dwell});
      }
    }
    cells.push_back({1024, 64, 0, /*max_fanout=*/32, /*reps_override=*/2,
                     /*headline=*/false});
    cells.push_back({1024, 64, 0, /*max_fanout=*/32, /*reps_override=*/1,
                     /*headline=*/false, /*threads=*/8});
    // 1k-router multi-group sweep with host churn (receivers roam with a
    // 30 s dwell), serial and parallel.
    cells.push_back({1024, 64, 30, /*max_fanout=*/32, /*reps_override=*/1,
                     /*headline=*/false});
    cells.push_back({1024, 64, 30, /*max_fanout=*/32, /*reps_override=*/1,
                     /*headline=*/false, /*threads=*/8});
  }

  BenchReport report("scale");
  Table t({"routers", "groups", "dwell", "thr", "events/rep", "Mev/s",
           "ns/event", "speedup", "data fwd", "delivered", "sg", "rss/sg",
           "pending@end"});
  double total_wall = 0.0, total_events = 0.0, total_fwd = 0.0;
  // events/s of each serial cell, keyed by shape, so the parallel twin
  // (which must come later in the list) can report speedup against it.
  std::map<std::tuple<std::size_t, std::size_t, int>, double> serial_rate;
  for (const Cell& cell : cells) {
    ReplicationOptions opts;
    opts.replications = cell.reps_override > 0 ? cell.reps_override : reps;
    opts.base_seed = 4242;
    // Serial on purpose: parallel replications would share cores and
    // poison each other's wall-clock (the quantity under test).
    opts.threads = 1;
    const auto cell_reps = static_cast<double>(opts.replications);
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run_cell(seed, cell, horizon);
    });
    double wall = m.at("wall_s").mean() * cell_reps;
    double events = m.at("events").mean() * cell_reps;
    double fwd = m.at("data_fwd").mean() * cell_reps +
                 m.at("unicast_fwd").mean() * cell_reps;
    if (cell.headline) {
      total_wall += wall;
      total_events += events;
      total_fwd += fwd;
    }
    double ns_per_event = events > 0 ? wall * 1e9 / events : 0.0;
    double events_per_s = wall > 0 ? events / wall : 0.0;
    const auto shape = std::make_tuple(cell.routers, cell.groups,
                                       cell.dwell_s);
    double speedup = 0.0;
    if (cell.threads <= 1) {
      serial_rate[shape] = events_per_s;
    } else if (auto it = serial_rate.find(shape); it != serial_rate.end() &&
               it->second > 0) {
      speedup = events_per_s / it->second;
    }
    // Cumulative process peak: meaningful for the largest cell (which
    // dominates it), reported per-row for the record.
    double rss = peak_rss_bytes();
    double sg = m.at("sg_entries").mean();
    double rss_per_sg = sg > 0 ? rss / sg : 0.0;
    t.add_row({std::to_string(cell.routers), std::to_string(cell.groups),
               cell.dwell_s == 0 ? "static" : std::to_string(cell.dwell_s) +
                                                  " s",
               fmt_double(m.at("threads").mean(), 0),
               fmt_double(m.at("events").mean(), 0),
               fmt_double(events / wall / 1e6, 2),
               fmt_double(ns_per_event, 0),
               cell.threads > 1 ? fmt_double(speedup, 2) : "-",
               fmt_double(m.at("data_fwd").mean(), 0),
               fmt_double(m.at("delivered").mean(), 0),
               fmt_double(sg, 0), fmt_double(rss_per_sg, 0),
               fmt_double(m.at("pending_at_end").mean(), 0)});
    Json row = Json::object();
    row.set("routers", static_cast<double>(cell.routers));
    row.set("groups", static_cast<double>(cell.groups));
    row.set("dwell_s", cell.dwell_s);
    row.set("events", m.at("events").mean());
    row.set("ns_per_event", ns_per_event);
    row.set("data_fwd", m.at("data_fwd").mean());
    row.set("delivered", m.at("delivered").mean());
    row.set("pending_at_end", m.at("pending_at_end").mean());
    row.set("sg_entries", sg);
    row.set("peak_rss_bytes", rss);
    row.set("rss_per_sg_bytes", rss_per_sg);
    row.set("mfc_hit", m.at("mfc_hit").mean());
    row.set("mfc_miss", m.at("mfc_miss").mean());
    row.set("headline", cell.headline);
    row.set("threads", m.at("threads").mean());
    row.set("events_per_s", events_per_s);
    // Guarded on *granted* shards: the partitioner may cap below the
    // request, and a speedup on a 1-thread row fails validation.
    if (cell.threads > 1 && m.at("threads").mean() > 1.0) {
      row.set("speedup", speedup);
    }
    report.add_row(std::move(row));
    if (cell.routers >= 1024 && cell.threads <= 1 && cell.dwell_s == 0) {
      report.metric("scale_1k_ns_per_event", ns_per_event);
      report.metric("scale_1k_peak_rss_bytes", rss);
      report.metric("scale_1k_rss_per_sg_bytes", rss_per_sg);
      report.metric("scale_1k_sg_entries", sg);
    }
    if (cell.routers >= 1024 && cell.threads > 1 && cell.dwell_s == 0) {
      report.metric("scale_1k_par_events_per_s", events_per_s);
      report.metric("scale_1k_par_speedup", speedup);
      report.metric("scale_1k_par_threads", m.at("threads").mean());
    }
    if (cell.routers >= 1024 && cell.dwell_s > 0) {
      report.metric(cell.threads > 1 ? "scale_1k_churn_par_events_per_s"
                                     : "scale_1k_churn_events_per_s",
                    events_per_s);
    }
  }
  std::printf("%s\n", t.str().c_str());

  report.record_run(total_wall, total_events);
  report.metric("packets_forwarded", total_fwd);
  report.metric("replications", static_cast<double>(reps));
  report.write();

  paper_note(
      "not a paper figure: this is the simulator's own scaling envelope. "
      "Sweeping topology size and handover rate at once is what made the "
      "related scaling studies credible (cs/0006022, cs/0408009); the "
      "ns/event trajectory recorded here bounds how far the Figure 1-4 "
      "scenarios can be swept.");
  return 0;
}
