// ABL2 — ablation on the Mobile IPv6 binding lifetime for the tunnel
// approaches. The paper notes (Section 4.3.2) that if extended Binding
// Updates stop arriving, the HA deletes the binding after the default
// lifetime (256 s) and "gives up the representation of the host as member
// of its multicast group". This bench injects Binding Update loss on the
// mobile node's foreign link and sweeps the lifetime, measuring multicast
// interruption for a bidirectional-tunnel receiver.
#include "common.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

ReplicationResult run(std::uint64_t seed, Time lifetime, double bu_loss) {
  WorldConfig config;
  config.mipv6.binding_lifetime = lifetime;
  config.mipv6.bu_refresh_interval = Time::ns(lifetime.nanos() / 2);
  Fig1Harness h({McastStrategy::kBidirTunnel, HaRegistration::kGroupListBu},
                seed, config);
  World& world = h.world();
  h.subscribe_all();
  h.source->start(Time::sec(1));

  // Drop a fraction of the MN's Binding Updates on its foreign link.
  Rng drop_rng(Rng::derive_seed(seed, 0xdead));
  h.f.link6->set_drop_fn([&](const Packet& pkt, const Interface&) {
    try {
      ParsedDatagram d = parse_datagram(pkt.view());
      if (d.has_option(opt::kBindingUpdate)) {
        return drop_rng.uniform() < bu_loss;
      }
    } catch (const ParseError&) {
    }
    return false;
  });

  world.scheduler().schedule_at(Time::sec(20), [&] {
    h.f.recv3->mn->move_to(*h.f.link6);
  });
  const Time horizon = Time::sec(1500);
  world.run_until(horizon);

  // Interruption: longest gap between consecutive deliveries after t=30 s.
  double longest_gap = 0;
  Time prev = Time::sec(30);
  for (const auto& rx : h.app3->log()) {
    if (rx.received_at < Time::sec(30)) continue;
    double gap = (rx.received_at - prev).to_seconds();
    longest_gap = std::max(longest_gap, gap);
    prev = rx.received_at;
  }
  longest_gap = std::max(longest_gap, (horizon - prev).to_seconds());

  double window_s = (horizon - Time::sec(30)).to_seconds();
  double expected = window_s / 0.1;  // 10 dgram/s
  ReplicationResult r;
  r["longest_gap_s"] = longest_gap;
  r["loss_pct"] =
      100.0 *
      (expected - static_cast<double>(
                      h.app3->received_in(Time::sec(30), horizon))) /
      expected;
  r["binding_expiries"] = static_cast<double>(
      world.net().counters().get("ha/binding-expired"));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  header("ABL2: binding lifetime vs multicast interruption (tunnel receiver)",
         "bidir-tunnel receiver on Link6, 40% of its BUs lost, 1500 s "
         "horizon");

  Table t({"binding lifetime", "refresh", "longest outage", "loss",
           "binding expiries"});
  for (int life_s : {64, 128, 256, 512}) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 2718;
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run(seed, Time::sec(life_s), 0.4);
    });
    t.add_row({std::to_string(life_s) + " s",
               std::to_string(life_s / 2) + " s",
               fmt_double(m.at("longest_gap_s").mean(), 1) + " s",
               fmt_double(m.at("loss_pct").mean(), 1) + " %",
               fmt_double(m.at("binding_expiries").mean(), 1)});
  }
  std::printf("%s\n", t.str().c_str());

  paper_note(
      "Section 4.3.2: \"missing extended BINDING UPDATES would let the "
      "home agent delete its binding cache entry (default 256 s) and, "
      "thus, give up the representation of the host as member of its "
      "multicast group\" — shorter lifetimes bound the outage after losing "
      "refreshes but multiply signalling; the BU retransmission machinery "
      "masks most individual losses.");
  return 0;
}
