// FIG5 — the paper's proposed Multicast Group List Sub-Option for Binding
// Updates. Reproduces the wire format of Figure 5 octet by octet
// (Sub-Option Type, Sub-Option Len = 16*N, then N 128-bit group
// addresses), validates the H-bit rule, and round-trips the option through
// a complete Binding Update datagram.
#include "common.hpp"
#include "ipv6/datagram.hpp"
#include "mipv6/messages.hpp"
#include "sim/rng.hpp"
#include "util/buffer.hpp"

using namespace mip6;
using namespace mip6::bench;

int main() {
  header("FIG5: Multicast Group List Sub-Option wire format",
         "octet layout per the paper's Figure 5, fuzz + round-trip checks");

  Table t({"N groups", "Sub-Option Len", "Len == 16*N", "round-trips"});
  for (std::size_t n = 0; n <= 8; ++n) {
    MulticastGroupListSubOption list;
    for (std::size_t i = 0; i < n; ++i) {
      list.groups.push_back(
          Address::from_prefix_iid(Address::parse("ff1e::"), i + 1));
    }
    BuSubOption sub = list.encode();
    MulticastGroupListSubOption back =
        MulticastGroupListSubOption::decode(sub);
    bool rt = back.groups == list.groups;
    t.add_row({std::to_string(n), std::to_string(sub.data.size()),
               sub.data.size() == 16 * n ? "yes" : "NO",
               rt ? "yes" : "NO"});
  }
  std::printf("%s\n", t.str().c_str());

  // Octet-level check for N=2: type, len, then the two addresses verbatim.
  {
    MulticastGroupListSubOption list;
    list.groups.push_back(Address::parse("ff1e::1"));
    list.groups.push_back(Address::parse("ff1e::2"));
    BindingUpdateOption bu;
    bu.home_registration = true;  // "valid only ... Home Registration set"
    bu.sub_options.push_back(list.encode());
    DestOption opt = bu.encode();
    std::printf("BU option octets (N=2): %s\n",
                to_hex(opt.data).c_str());
    // Inside a full datagram with Home Address option, as sent on the wire.
    DatagramSpec spec;
    spec.src = Address::parse("2001:db8:6::99");  // care-of
    spec.dst = Address::parse("2001:db8:4::4");   // home agent
    spec.dest_options.push_back(opt);
    spec.dest_options.push_back(
        HomeAddressOption{Address::parse("2001:db8:4::99")}.encode());
    spec.protocol = proto::kNoNext;
    Bytes wire = build_datagram(spec);
    ParsedDatagram d = parse_datagram(wire);
    BindingUpdateOption parsed =
        BindingUpdateOption::decode(*d.find_option(opt::kBindingUpdate));
    auto groups = MulticastGroupListSubOption::decode(
                      *parsed.find_sub_option(subopt::kMulticastGroupList))
                      .groups;
    std::printf("full BU datagram: %zu octets; groups recovered: %s, %s; "
                "effective source (home address): %s\n\n",
                wire.size(), groups[0].str().c_str(),
                groups[1].str().c_str(), d.effective_src.str().c_str());
  }

  // Robustness: truncations always rejected, random bytes never crash.
  Rng rng(555);
  int rejected = 0, accepted = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes junk(rng.uniform_int(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      MulticastGroupListSubOption::decode(
          BuSubOption{subopt::kMulticastGroupList, junk});
      ++accepted;
    } catch (const ParseError&) {
      ++rejected;
    }
  }
  std::printf("fuzz: %d random payloads -> %d rejected, %d structurally "
              "valid (len %% 16 == 0 and all-multicast), 0 crashes\n\n",
              rejected + accepted, rejected, accepted);

  paper_note(
      "\"The Sub-Option Len fields must be set to 16N, where N is the "
      "number of multicast group addresses included\" (Fig. 5); the option "
      "rides in a BINDING UPDATE with Home Registration (H) set.");
  return 0;
}
