// SEND43 — Section 4.3.1's mobile-sender costs: with local sending, every
// move of the sender creates a brand-new flooded tree (bandwidth until the
// prunes land, scaled by T_PruneDel and the number of links), triggers
// spurious asserts from stale-source packets, and leaves stale (S,G) state
// behind for the 210 s data timeout. The reverse tunnel (approach B) pays
// a flat per-packet encapsulation instead. This bench sweeps the sender
// mobility rate on a 12-router campus backbone (so floods have memberless
// branches to waste bandwidth on) and prints both cost curves.
#include "common.hpp"
#include "core/random_topology.hpp"
#include "runner/parallel.hpp"

using namespace mip6;
using namespace mip6::bench;

namespace {

const Address kGroup = Address::parse("ff1e::20");

ReplicationResult run(std::uint64_t seed, McastStrategy strategy,
                      Time mean_dwell) {
  RandomTopologyParams params;
  params.routers = 12;
  params.extra_links = 2;
  params.seed = seed;
  RandomTopology topo = build_random_topology(params);
  World& world = *topo.world;

  StrategyOptions opts{strategy, HaRegistration::kGroupListBu};
  NodeRuntime& sender = world.add_host("S", *topo.stub_links[0], opts);
  NodeRuntime& m1 = world.add_host("M1", *topo.stub_links[3]);
  NodeRuntime& m2 = world.add_host("M2", *topo.stub_links[7]);
  world.finalize();

  GroupReceiverApp app1(*m1.stack, kPort);
  GroupReceiverApp app2(*m2.stack, kPort);
  m1.service->subscribe(kGroup);
  m2.service->subscribe(kGroup);

  McastMetrics metrics(world.net(), world.routing(), kGroup, kPort);
  const LinkId home = topo.stub_links[0]->id();
  const std::vector<LinkId> members{topo.stub_links[3]->id(),
                                    topo.stub_links[7]->id()};
  metrics.update_reference_tree(home, members);

  CbrSource source(
      world.scheduler(),
      [&](Bytes p) {
        sender.service->send_multicast(kGroup, kPort, kPort, std::move(p));
      },
      Time::ms(50), 200);
  source.start(Time::sec(1));

  std::vector<Link*> roam(topo.stub_links.begin(), topo.stub_links.end());
  RandomMover mover(*sender.mn, world.net().rng(), roam, mean_dwell);
  mover.set_on_move([&](Link& to) {
    // With local sending the effective source link follows the host; the
    // reverse tunnel keeps the home link as tree root.
    metrics.update_reference_tree(
        sends_locally(strategy) ? to.id() : home, members);
  });
  // A "static" sweep point (huge dwell) never starts the mover at all.
  if (mean_dwell < Time::sec(10000)) mover.start(Time::sec(30));

  const Time horizon = Time::sec(600);
  world.run_until(horizon);

  std::uint64_t peak_sg = 0;
  for (NodeRuntime* r : topo.routers) {
    peak_sg = std::max<std::uint64_t>(peak_sg, r->pim->entry_count());
  }
  auto& c = world.net().counters();
  double sent = static_cast<double>(source.sent());
  ReplicationResult r;
  r["moves"] = static_cast<double>(mover.moves());
  r["asserts"] = static_cast<double>(c.get("pimdm/tx/assert"));
  r["sg_created"] = static_cast<double>(c.get("pimdm/sg-created"));
  r["sg_live_at_end"] = static_cast<double>(peak_sg);
  r["wasted_kib"] = static_cast<double>(metrics.wasted_bytes()) / 1024.0;
  r["prunes"] = static_cast<double>(c.get("pimdm/tx/prune"));
  r["mn_encaps"] = static_cast<double>(c.get("mn/encap"));
  r["loss_pct"] =
      100.0 * (sent - static_cast<double>(app1.unique_received())) / sent;
  return r;
}

void sweep(const char* label, McastStrategy strategy, std::size_t reps) {
  std::printf("--- %s ---\n", label);
  Table t({"mean dwell", "moves", "asserts", "(S,G) created",
           "(S,G) live at end", "prunes", "wasted bw", "MN encaps",
           "M1 loss"});
  for (int dwell_s : {100000, 300, 120, 60, 30}) {
    ReplicationOptions opts;
    opts.replications = reps;
    opts.base_seed = 777;
    auto m = run_replications(opts, [&](std::uint64_t seed) {
      return run(seed, strategy, Time::sec(dwell_s));
    });
    t.add_row({dwell_s >= 100000 ? "static" : std::to_string(dwell_s) + " s",
               fmt_double(m.at("moves").mean(), 1),
               fmt_double(m.at("asserts").mean(), 1),
               fmt_double(m.at("sg_created").mean(), 1),
               fmt_double(m.at("sg_live_at_end").mean(), 1),
               fmt_double(m.at("prunes").mean(), 1),
               fmt_double(m.at("wasted_kib").mean(), 0) + " KiB",
               fmt_double(m.at("mn_encaps").mean(), 0),
               fmt_double(m.at("loss_pct").mean(), 1) + " %"});
  }
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  header("SEND43: mobile-sender cost vs mobility rate",
         "12-router backbone, 2 member stubs; sender roams all stubs with "
         "exponential dwell; 20 dgram/s, 200 B, 600 s horizon");

  sweep("approach A: local sending on the foreign link",
        McastStrategy::kLocalMembership, reps);
  sweep("approach B: reverse tunnel to the home agent",
        McastStrategy::kBidirTunnel, reps);

  paper_note(
      "Section 4.3.1: with local sending, asserts, new flooded trees, "
      "prune exchanges and wasted bandwidth all grow with the sender's "
      "mobility rate (\"the wasted capacity depends ... on the mobility "
      "rate of the sender\"), and stale trees persist until the 210 s data "
      "timeout; with the reverse tunnel those curves are flat — only MN "
      "encapsulations grow with the traffic volume, not with mobility. "
      "(The static rows show the waste floor from dense mode's periodic "
      "prune-expiry refloods, which both approaches pay regardless.)");
  return 0;
}
