// Machine-readable bench reports.
//
// Every bench that participates in the perf trajectory writes a
// BENCH_<name>.json next to its stdout tables (schema "mip6-bench-v1",
// documented in docs/PERF.md). The trajectory is the point: the JSON from
// the commit before a perf PR is the baseline the PR's numbers are judged
// against, and bench-smoke CI validates that every report stays
// well-formed.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "util/json.hpp"

namespace mip6::bench {

/// Peak resident set size of this process in bytes (0 where unsupported).
inline double peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // Linux reports KiB, macOS bytes; normalize to bytes.
#if defined(__APPLE__)
    return static_cast<double>(ru.ru_maxrss);
#else
    return static_cast<double>(ru.ru_maxrss) * 1024.0;
#endif
  }
#endif
  return 0.0;
}

/// Wall-clock stopwatch for ns/event accounting around scheduler runs.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    doc_ = Json::object();
    doc_.set("schema", "mip6-bench-v1");
    doc_.set("name", name_);
    doc_.set("metrics", Json::object());
    doc_.set("rows", Json::array());
  }

  void metric(const std::string& key, double value) {
    metrics_.push_back({key, value});
  }

  /// Records a sweep point (arbitrary key/value object).
  void add_row(Json row) { rows_.push_back(std::move(row)); }

  /// Convenience: derives ns/event + events/s from a timed scheduler run
  /// and folds it into the headline metrics.
  void record_run(double wall_s, double events) {
    metric("wall_s", wall_s);
    metric("events", events);
    metric("ns_per_event", events > 0 ? wall_s * 1e9 / events : 0.0);
    metric("events_per_s", wall_s > 0 ? events / wall_s : 0.0);
  }

  /// Writes BENCH_<name>.json into the current directory (or $MIP6_BENCH_DIR
  /// if set) and echoes the headline metrics to stdout.
  void write() {
    Json metrics = Json::object();
    for (const auto& [k, v] : metrics_) metrics.set(k, v);
    metrics.set("peak_rss_bytes", peak_rss_bytes());
    doc_.set("metrics", std::move(metrics));
    Json rows = Json::array();
    for (auto& r : rows_) rows.push_back(std::move(r));
    doc_.set("rows", std::move(rows));

    std::string dir = ".";
    if (const char* env = std::getenv("MIP6_BENCH_DIR")) dir = env;
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return;
    }
    std::string text = doc_.dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# report: %s\n", path.c_str());
    for (const auto& [k, v] : metrics_) {
      std::printf("#   %s = %g\n", k.c_str(), v);
    }
  }

 private:
  std::string name_;
  Json doc_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<Json> rows_;
};

/// True when the bench should shrink to a few iterations (CI smoke runs).
inline bool smoke_mode() { return std::getenv("MIP6_BENCH_SMOKE") != nullptr; }

}  // namespace mip6::bench
